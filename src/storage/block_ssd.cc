#include "storage/block_ssd.h"

namespace kvcsd::storage {

BlockSsd::BlockSsd(sim::Simulation* sim, const BlockSsdConfig& config)
    : sim_(sim), config_(config), nand_(sim, config.nand, "blk") {}

sim::Task<void> BlockSsd::DoStriped(std::uint64_t offset, std::uint64_t bytes,
                                    bool is_write) {
  if (bytes == 0) co_return;
  const std::uint64_t stripe = config_.stripe_size;
  const std::uint32_t channels = config_.nand.channels;

  sim::WaitGroup wg(sim_);
  std::uint64_t cursor = offset;
  std::uint64_t remaining = bytes;
  while (remaining > 0) {
    const std::uint64_t in_stripe = stripe - (cursor % stripe);
    const std::uint64_t chunk = remaining < in_stripe ? remaining : in_stripe;
    const std::uint32_t channel =
        static_cast<std::uint32_t>((cursor / stripe) % channels);
    wg.Add(1);
    sim_->Spawn([](NandModel* nand, sim::WaitGroup* group,
                   std::uint32_t ch, std::uint64_t n,
                   bool write) -> sim::Task<void> {
      if (write) {
        co_await nand->Program(ch, n);
      } else {
        co_await nand->Read(ch, n);
      }
      group->Done();
    }(&nand_, &wg, channel, chunk, is_write));
    cursor += chunk;
    remaining -= chunk;
  }
  co_await wg.Wait();
}

sim::Task<void> BlockSsd::Read(std::uint64_t offset, std::uint64_t bytes) {
  bytes_read_ += bytes;
  ++read_ops_;
  co_await DoStriped(offset, bytes, /*is_write=*/false);
}

sim::Task<void> BlockSsd::Write(std::uint64_t offset, std::uint64_t bytes) {
  bytes_written_ += bytes;
  ++write_ops_;
  co_await DoStriped(offset, bytes, /*is_write=*/true);
}

sim::Task<void> BlockSsd::Flush() {
  // A flush drains in-flight channel work; model as a fixed small barrier.
  co_await sim_->Delay(Microseconds(20));
}

}  // namespace kvcsd::storage
