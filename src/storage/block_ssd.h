// Conventional (non-zoned) NVMe SSD timing model for the host side.
//
// The host filesystem (src/hostenv) keeps file payloads itself; this class
// accounts only for device time and traffic statistics. Requests are
// striped over NAND channels at `stripe_size` granularity, mirroring how a
// conventional SSD spreads an LBA range, so large sequential I/O enjoys
// channel parallelism while small random I/O pays per-page latency — the
// asymmetry the paper's read-amplification argument rests on.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/units.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "storage/nand.h"

namespace kvcsd::storage {

struct BlockSsdConfig {
  NandConfig nand;
  std::uint64_t stripe_size = KiB(128);
};

class BlockSsd {
 public:
  BlockSsd(sim::Simulation* sim, const BlockSsdConfig& config);

  // Device time for reading `bytes` starting at device offset `offset`.
  sim::Task<void> Read(std::uint64_t offset, std::uint64_t bytes);

  // Device time for writing.
  sim::Task<void> Write(std::uint64_t offset, std::uint64_t bytes);

  // Flush barrier: models the device draining its write cache.
  sim::Task<void> Flush();

  const BlockSsdConfig& config() const { return config_; }
  std::uint64_t total_bytes_read() const { return bytes_read_; }
  std::uint64_t total_bytes_written() const { return bytes_written_; }
  std::uint64_t total_read_ops() const { return read_ops_; }
  std::uint64_t total_write_ops() const { return write_ops_; }

 private:
  // Splits [offset, offset+bytes) into per-channel chunks and performs them
  // in parallel, completing when the slowest chunk finishes.
  sim::Task<void> DoStriped(std::uint64_t offset, std::uint64_t bytes,
                            bool is_write);

  sim::Simulation* sim_;
  BlockSsdConfig config_;
  NandModel nand_;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t read_ops_ = 0;
  std::uint64_t write_ops_ = 0;
};

}  // namespace kvcsd::storage
