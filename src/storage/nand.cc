#include "storage/nand.h"

#include <cassert>

namespace kvcsd::storage {

NandModel::NandModel(sim::Simulation* sim, const NandConfig& config,
                     std::string name)
    : sim_(sim),
      config_(config),
      meter_(sim, name, static_cast<double>(config.channels)) {
  assert(config_.channels > 0);
  channels_.reserve(config_.channels);
  for (std::uint32_t c = 0; c < config_.channels; ++c) {
    channels_.push_back(std::make_unique<sim::BandwidthResource>(
        sim_, name + ".ch" + std::to_string(c),
        config_.channel_bytes_per_sec, Tick{0}));
    channels_.back()->set_meter(&meter_);
  }
}

sim::Task<void> NandModel::Read(std::uint32_t channel, std::uint64_t bytes,
                                sim::Activity act) {
  assert(channel < config_.channels);
  const std::uint64_t page_bytes = RoundUpToPages(bytes);
  bytes_read_ += page_bytes;
  co_await channels_[channel]->Transfer(page_bytes, act);
  co_await sim_->Delay(config_.read_latency);
}

sim::Task<void> NandModel::Program(std::uint32_t channel, std::uint64_t bytes,
                                   sim::Activity act) {
  assert(channel < config_.channels);
  const std::uint64_t page_bytes = RoundUpToPages(bytes);
  bytes_written_ += page_bytes;
  co_await channels_[channel]->Transfer(page_bytes, act);
  co_await sim_->Delay(config_.program_latency);
}

sim::Task<void> NandModel::Erase(std::uint32_t channel, sim::Activity act) {
  assert(channel < config_.channels);
  ++erases_;
  co_await channels_[channel]->Transfer(0, act);
  co_await sim_->Delay(config_.erase_latency);
}

}  // namespace kvcsd::storage
