// NAND flash timing model shared by the ZNS SSD (device side) and the
// conventional block SSD (host side).
//
// Geometry and costs are first-order: the SSD exposes `channels`
// independent channels; each serializes data transfers at
// `channel_bytes_per_sec`, and each operation additionally pays the NAND
// array latency (read / program / erase), which pipelines across
// back-to-back operations the way real plane-level parallelism does.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/resources.h"
#include "sim/simulation.h"

namespace kvcsd::storage {

struct NandConfig {
  std::uint32_t channels = 16;
  std::uint32_t page_size = 4096;
  // Latencies are FIRST-page latencies; sustained throughput (all planes
  // busy) is already captured by channel_bytes_per_sec, so large requests
  // pay the latency once and the transfer time for the rest.
  Tick read_latency = Microseconds(70);
  Tick program_latency = Microseconds(100);
  Tick erase_latency = Milliseconds(3);
  double channel_bytes_per_sec = 500e6;  // per-channel streaming rate
};

class NandModel {
 public:
  NandModel(sim::Simulation* sim, const NandConfig& config,
            std::string name = "nand");

  // Occupies `channel` for the transfer time of `bytes` plus the array
  // read latency. `bytes` is rounded up to whole pages (read amplification
  // at page granularity is real and intentional). `act` attributes the
  // channel service time in the aggregate meter; it never changes timing.
  sim::Task<void> Read(std::uint32_t channel, std::uint64_t bytes,
                       sim::Activity act = sim::Activity::kOther);

  // Same for programming (writing).
  sim::Task<void> Program(std::uint32_t channel, std::uint64_t bytes,
                          sim::Activity act = sim::Activity::kOther);

  // Erase occupies the channel for the (long) erase latency.
  sim::Task<void> Erase(std::uint32_t channel,
                        sim::Activity act = sim::Activity::kOther);

  // Aggregate per-activity occupancy across ALL channels: WindowLoad is in
  // channel-equivalents, capacity() = the channel count.
  const sim::ResourceMeter& meter() const { return meter_; }

  const NandConfig& config() const { return config_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t erases() const { return erases_; }

  std::uint64_t RoundUpToPages(std::uint64_t bytes) const {
    const std::uint64_t page = config_.page_size;
    return (bytes + page - 1) / page * page;
  }

 private:
  sim::Simulation* sim_;
  NandConfig config_;
  sim::ResourceMeter meter_;
  std::vector<std::unique_ptr<sim::BandwidthResource>> channels_;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t erases_ = 0;
};

}  // namespace kvcsd::storage
