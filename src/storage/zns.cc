#include "storage/zns.h"

#include <cstring>
#include <string>

namespace kvcsd::storage {

ZnsSsd::ZnsSsd(sim::Simulation* sim, const ZnsConfig& config)
    : sim_(sim), config_(config), nand_(sim, config.nand, "zns"),
      zones_(config.num_zones) {}

Status ZnsSsd::CheckZoneId(std::uint32_t zone) const {
  if (zone >= config_.num_zones) {
    return Status::InvalidArgument("zone id " + std::to_string(zone) +
                                   " out of range");
  }
  return Status::Ok();
}

sim::Task<Result<std::uint64_t>> ZnsSsd::Append(
    std::uint32_t zone, std::span<const std::byte> data) {
  if (Status s = CheckZoneId(zone); !s.ok()) co_return s;
  Zone& z = zones_[zone];
  if (z.state == ZoneState::kFull) {
    co_return Status::FailedPrecondition("append to full zone");
  }
  if (data.empty()) {
    co_return Status::InvalidArgument("empty append");
  }
  if (z.write_pointer + data.size() > config_.zone_size) {
    co_return Status::OutOfSpace("append exceeds zone capacity");
  }

  const std::uint64_t addr =
      static_cast<std::uint64_t>(zone) * config_.zone_size + z.write_pointer;
  z.data.insert(z.data.end(), data.begin(), data.end());
  z.write_pointer += data.size();
  z.state = z.write_pointer == config_.zone_size ? ZoneState::kFull
                                                 : ZoneState::kOpen;
  bytes_written_ += data.size();

  co_await nand_.Program(ChannelOf(zone), data.size());
  co_return addr;
}

sim::Task<Status> ZnsSsd::Read(std::uint64_t addr, std::span<std::byte> out) {
  const std::uint32_t zone =
      static_cast<std::uint32_t>(addr / config_.zone_size);
  if (Status s = CheckZoneId(zone); !s.ok()) co_return s;
  const Zone& z = zones_[zone];
  const std::uint64_t offset = addr % config_.zone_size;
  if (offset + out.size() > z.write_pointer) {
    co_return Status::InvalidArgument(
        "read beyond write pointer (zone " + std::to_string(zone) + ")");
  }
  std::memcpy(out.data(), z.data.data() + offset, out.size());
  bytes_read_ += out.size();
  co_await nand_.Read(ChannelOf(zone), out.size());
  co_return Status::Ok();
}

sim::Task<Status> ZnsSsd::Reset(std::uint32_t zone) {
  if (Status s = CheckZoneId(zone); !s.ok()) co_return s;
  Zone& z = zones_[zone];
  const bool had_data = z.write_pointer > 0;
  z.state = ZoneState::kEmpty;
  z.write_pointer = 0;
  z.data.clear();
  z.data.shrink_to_fit();
  ++resets_;
  if (had_data) {
    // NAND erase-blocks must be erased before reuse; resetting a
    // never-written zone only rewinds the write pointer.
    co_await nand_.Erase(ChannelOf(zone));
  }
  co_return Status::Ok();
}

Status ZnsSsd::Finish(std::uint32_t zone) {
  KVCSD_RETURN_IF_ERROR(CheckZoneId(zone));
  Zone& z = zones_[zone];
  if (z.state == ZoneState::kEmpty) {
    return Status::FailedPrecondition("finish on empty zone");
  }
  z.state = ZoneState::kFull;
  return Status::Ok();
}

ZoneState ZnsSsd::zone_state(std::uint32_t zone) const {
  return zones_[zone].state;
}

std::uint64_t ZnsSsd::write_pointer(std::uint32_t zone) const {
  return zones_[zone].write_pointer;
}

}  // namespace kvcsd::storage
