#include "storage/zns.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "sim/fault.h"
#include "sim/simulation.h"

namespace kvcsd::storage {

ZnsSsd::ZnsSsd(sim::Simulation* sim, const ZnsConfig& config)
    : sim_(sim), config_(config),
      nand_(sim, config.nand, config.stats_prefix + "zns"),
      zones_(config.num_zones), zone_tags_(config.num_zones, kNoTag) {
  if (config_.faults != nullptr) {
    // Power cut tears the in-flight append; the hook list is cleared by
    // the injector after a crash, so this fires at most once per arming.
    crash_hook_token_ = config_.faults->AddCrashHook(
        [this] { TearLastAppend(config_.faults->torn_tail_keep()); });
  }
}

ZnsSsd::~ZnsSsd() {
  if (config_.faults != nullptr && crash_hook_token_ != 0) {
    config_.faults->RemoveCrashHook(crash_hook_token_);
  }
}

std::uint16_t ZnsSsd::InternTag(std::string_view tag) {
  for (std::uint16_t i = 0; i < tag_sets_.size(); ++i) {
    if (tag_sets_[i].name == tag) return i;
  }
  TagCounters set;
  set.name = std::string(tag);
  const std::string prefix =
      config_.stats_prefix + "zns." + set.name + ".";
  sim::Stats& stats = sim_->stats();
  set.append_bytes = &stats.counter(prefix + "append_bytes");
  set.appends = &stats.counter(prefix + "appends");
  set.read_bytes = &stats.counter(prefix + "read_bytes");
  set.reads = &stats.counter(prefix + "reads");
  set.resets = &stats.counter(prefix + "resets");
  tag_sets_.push_back(std::move(set));
  return static_cast<std::uint16_t>(tag_sets_.size() - 1);
}

void ZnsSsd::TagZone(std::uint32_t zone, std::string_view tag) {
  if (zone >= config_.num_zones) return;
  zone_tags_[zone] = InternTag(tag);
}

Status ZnsSsd::CheckZoneId(std::uint32_t zone) const {
  if (zone >= config_.num_zones) {
    return Status::InvalidArgument("zone id " + std::to_string(zone) +
                                   " out of range");
  }
  return Status::Ok();
}

sim::Task<Result<std::uint64_t>> ZnsSsd::Append(
    std::uint32_t zone, std::span<const std::byte> data, sim::Activity act) {
  if (Status s = CheckZoneId(zone); !s.ok()) co_return s;
  if (config_.faults != nullptr) {
    if (Status s = config_.faults->OnIo(sim::FaultOp::kAppend, zone);
        !s.ok()) {
      co_return s;
    }
  }
  Zone& z = zones_[zone];
  if (z.state == ZoneState::kFull) {
    co_return Status::FailedPrecondition("append to full zone");
  }
  if (data.empty()) {
    co_return Status::InvalidArgument("empty append");
  }
  if (z.write_pointer + data.size() > config_.zone_size) {
    co_return Status::OutOfSpace("append exceeds zone capacity");
  }

  const std::uint64_t addr =
      static_cast<std::uint64_t>(zone) * config_.zone_size + z.write_pointer;
  z.data.insert(z.data.end(), data.begin(), data.end());
  z.write_pointer += data.size();
  z.state = z.write_pointer == config_.zone_size ? ZoneState::kFull
                                                 : ZoneState::kOpen;
  bytes_written_ += data.size();
  if (zone_tags_[zone] != kNoTag) {
    TagCounters& tc = tag_sets_[zone_tags_[zone]];
    tc.append_bytes->Add(data.size());
    tc.appends->Increment();
  }

  // Record before awaiting the program latency: a crash during the NAND
  // program is exactly the window where this append ends up torn.
  has_last_append_ = true;
  last_append_zone_ = zone;
  last_append_end_ = z.write_pointer;
  last_append_len_ = data.size();

  co_await nand_.Program(ChannelOf(zone), data.size(), act);
  co_return addr;
}

sim::Task<Status> ZnsSsd::Read(std::uint64_t addr, std::span<std::byte> out,
                               sim::Activity act) {
  const std::uint32_t zone =
      static_cast<std::uint32_t>(addr / config_.zone_size);
  if (Status s = CheckZoneId(zone); !s.ok()) co_return s;
  if (config_.faults != nullptr) {
    if (Status s = config_.faults->OnIo(sim::FaultOp::kRead, zone); !s.ok()) {
      co_return s;
    }
  }
  const Zone& z = zones_[zone];
  const std::uint64_t offset = addr % config_.zone_size;
  if (offset + out.size() > z.write_pointer) {
    co_return Status::InvalidArgument(
        "read beyond write pointer (zone " + std::to_string(zone) + ")");
  }
  std::memcpy(out.data(), z.data.data() + offset, out.size());
  bytes_read_ += out.size();
  if (zone_tags_[zone] != kNoTag) {
    TagCounters& tc = tag_sets_[zone_tags_[zone]];
    tc.read_bytes->Add(out.size());
    tc.reads->Increment();
  }
  co_await nand_.Read(ChannelOf(zone), out.size(), act);
  co_return Status::Ok();
}

sim::Task<Status> ZnsSsd::Reset(std::uint32_t zone, sim::Activity act) {
  if (Status s = CheckZoneId(zone); !s.ok()) co_return s;
  if (config_.faults != nullptr) {
    if (Status s = config_.faults->OnIo(sim::FaultOp::kReset, zone);
        !s.ok()) {
      co_return s;
    }
  }
  Zone& z = zones_[zone];
  const bool had_data = z.write_pointer > 0;
  z.state = ZoneState::kEmpty;
  z.write_pointer = 0;
  z.data.clear();
  z.data.shrink_to_fit();
  ++resets_;
  if (zone_tags_[zone] != kNoTag) {
    tag_sets_[zone_tags_[zone]].resets->Increment();
  }
  if (has_last_append_ && last_append_zone_ == zone) {
    has_last_append_ = false;  // the torn-tail candidate is gone
  }
  if (had_data) {
    // NAND erase-blocks must be erased before reuse; resetting a
    // never-written zone only rewinds the write pointer.
    co_await nand_.Erase(ChannelOf(zone), act);
  }
  co_return Status::Ok();
}

Status ZnsSsd::Finish(std::uint32_t zone) {
  KVCSD_RETURN_IF_ERROR(CheckZoneId(zone));
  Zone& z = zones_[zone];
  if (z.state == ZoneState::kEmpty) {
    return Status::FailedPrecondition("finish on empty zone");
  }
  z.state = ZoneState::kFull;
  return Status::Ok();
}

void ZnsSsd::TearLastAppend(double keep_fraction) {
  if (keep_fraction < 0.0 || !has_last_append_) return;
  Zone& z = zones_[last_append_zone_];
  // Only the tail of the zone can be torn; a later append to the same zone
  // means this one already completed its program.
  if (z.write_pointer != last_append_end_) return;
  std::uint64_t keep = static_cast<std::uint64_t>(
      static_cast<double>(last_append_len_) * std::clamp(keep_fraction, 0.0,
                                                         1.0));
  if (keep_fraction < 1.0 && keep >= last_append_len_) {
    keep = last_append_len_ - 1;
  }
  const std::uint64_t drop = last_append_len_ - keep;
  if (drop == 0) return;
  z.write_pointer -= drop;
  z.data.resize(z.data.size() - drop);
  if (z.state == ZoneState::kFull && z.write_pointer < config_.zone_size) {
    z.state = z.write_pointer == 0 ? ZoneState::kEmpty : ZoneState::kOpen;
  } else if (z.write_pointer == 0) {
    z.state = ZoneState::kEmpty;
  }
  has_last_append_ = false;
}

void ZnsSsd::CloneStateFrom(const ZnsSsd& other) {
  zones_ = other.zones_;
}

ZoneState ZnsSsd::zone_state(std::uint32_t zone) const {
  return zones_[zone].state;
}

std::uint64_t ZnsSsd::write_pointer(std::uint32_t zone) const {
  return zones_[zone].write_pointer;
}

}  // namespace kvcsd::storage
