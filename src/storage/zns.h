// Zoned-namespace SSD model.
//
// Functionally faithful to the ZNS contract the paper relies on (§III,
// §IV): storage is an array of equal-sized zones, each with a write
// pointer; only sequential writes are allowed within a zone; a reset
// rewinds the write pointer and reclaims the space. Zones map statically to
// NAND channels (zone id mod channels), which is what makes the paper's
// zone-cluster striping meaningful. Zone payloads are REAL bytes: reads
// return exactly what was appended, so all index/compaction code above this
// layer is functionally testable.
//
// An optional sim::FaultInjector gates every Append/Read/Reset (injected
// media errors, power-off) and models the torn tail: on a crash the last
// in-flight append is truncated, leaving a partial record for recovery to
// tolerate. After a crash the byte state survives in this object;
// CloneStateFrom() lets a freshly constructed device take it over, which
// is how Device::Restart() simulates power-cycling the hardware.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "storage/nand.h"

namespace kvcsd::sim {
class FaultInjector;
}  // namespace kvcsd::sim

namespace kvcsd::storage {

enum class ZoneState : std::uint8_t {
  kEmpty = 0,
  kOpen,      // has data, write pointer not at capacity
  kFull,      // write pointer at capacity or explicitly finished
};

struct ZnsConfig {
  NandConfig nand;
  std::uint64_t zone_size = MiB(64);
  std::uint32_t num_zones = 1024;
  // Stats/meter name prefix: prefixes the "zns" NAND utilization meter
  // and the per-tag "zns.<tag>.*" I/O counters. Empty (the default) keeps
  // the historical names; multi-device simulations give each SSD its own
  // prefix ("shard0.", ...) so the series stay separable.
  std::string stats_prefix;
  // Optional fault injector consulted on every I/O; not owned, must
  // outlive the ZnsSsd. nullptr = no fault injection.
  sim::FaultInjector* faults = nullptr;
};

class ZnsSsd {
 public:
  ZnsSsd(sim::Simulation* sim, const ZnsConfig& config);
  // Deregisters the torn-tail crash hook: the injector may outlive this
  // SSD (fixtures, Device::Restart), and a crash after destruction must
  // not call into a freed object.
  ~ZnsSsd();
  ZnsSsd(const ZnsSsd&) = delete;
  ZnsSsd& operator=(const ZnsSsd&) = delete;

  // Appends `data` at the zone's write pointer. Returns the device byte
  // address of the first appended byte. Fails if the zone is full or the
  // data does not fit in the remaining zone capacity. `act` attributes the
  // NAND channel time per activity class (accounting only).
  sim::Task<Result<std::uint64_t>> Append(
      std::uint32_t zone, std::span<const std::byte> data,
      sim::Activity act = sim::Activity::kOther);

  // Reads `out.size()` bytes starting at device byte address `addr`. The
  // range must lie entirely within the written extent of one zone.
  sim::Task<Status> Read(std::uint64_t addr, std::span<std::byte> out,
                         sim::Activity act = sim::Activity::kOther);

  // Rewinds the zone's write pointer and discards its contents (charges
  // the NAND erase latency).
  sim::Task<Status> Reset(std::uint32_t zone,
                          sim::Activity act = sim::Activity::kOther);

  // Transitions an open zone to Full (no more appends until reset).
  Status Finish(std::uint32_t zone);

  // Truncates the most recent append (if its bytes are still the tail of
  // their zone) to keep only `keep_fraction` of it — at least one byte is
  // dropped for fractions < 1. Models the partially-programmed flash page
  // a power cut leaves behind. No NAND latency: this is not an operation
  // the device performs, it is what the medium looks like afterwards.
  void TearLastAppend(double keep_fraction);

  // Durability barrier: declares the most recent append settled, so a
  // later power cut can no longer tear it. The device calls this at every
  // durability commit point (metadata snapshot persisted) BEFORE
  // acknowledging — the power-fail-protected flush a real drive performs.
  // Without the barrier, a crash early in a later operation could tear
  // bytes the host was already told are durable.
  void CommitTail() { has_last_append_ = false; }

  // Adopts the zone byte state (states, write pointers, payloads) of
  // another ZnsSsd with an identical geometry. Used by Device::Restart()
  // to hand the surviving medium to a freshly constructed device.
  void CloneStateFrom(const ZnsSsd& other);

  ZoneState zone_state(std::uint32_t zone) const;
  std::uint64_t write_pointer(std::uint32_t zone) const;
  std::uint32_t ChannelOf(std::uint32_t zone) const {
    return zone % config_.nand.channels;
  }

  const ZnsConfig& config() const { return config_; }
  std::uint32_t num_zones() const { return config_.num_zones; }
  std::uint64_t zone_size() const { return config_.zone_size; }
  NandModel& nand() { return nand_; }
  const NandModel& nand() const { return nand_; }
  sim::FaultInjector* fault_injector() const { return config_.faults; }

  std::uint64_t total_bytes_written() const { return bytes_written_; }
  std::uint64_t total_bytes_read() const { return bytes_read_; }
  std::uint64_t total_resets() const { return resets_; }

  // Tags a zone with a role name; subsequent I/O on the zone is accounted
  // to the simulation-wide stats registry under
  //   zns.<tag>.{append_bytes,appends,read_bytes,reads,resets}.
  // The storage layer stays role-agnostic: the ZoneManager applies its
  // cluster-type names ("klog", "pidx", ...) and the metadata path tags
  // the reserved snapshot zones "meta". Re-tagging switches accounting
  // going forward; untagged zones are not accounted. Tag strings are
  // interned — use a small, fixed vocabulary.
  void TagZone(std::uint32_t zone, std::string_view tag);

 private:
  struct Zone {
    ZoneState state = ZoneState::kEmpty;
    std::uint64_t write_pointer = 0;  // bytes written into the zone
    std::vector<std::byte> data;
  };

  Status CheckZoneId(std::uint32_t zone) const;

  // Per-tag counter set, pointing into the stats registry (node-stable).
  struct TagCounters {
    std::string name;
    sim::Counter* append_bytes;
    sim::Counter* appends;
    sim::Counter* read_bytes;
    sim::Counter* reads;
    sim::Counter* resets;
  };
  static constexpr std::uint16_t kNoTag = 0xffff;
  std::uint16_t InternTag(std::string_view tag);

  sim::Simulation* sim_;
  ZnsConfig config_;
  NandModel nand_;
  std::vector<Zone> zones_;
  std::vector<std::uint16_t> zone_tags_;  // index into tag_sets_, kNoTag
  std::vector<TagCounters> tag_sets_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t resets_ = 0;

  // Torn-tail crash-hook registration (0 = none registered).
  std::uint64_t crash_hook_token_ = 0;

  // Most recent append, tracked for torn-tail truncation on crash.
  bool has_last_append_ = false;
  std::uint32_t last_append_zone_ = 0;
  std::uint64_t last_append_end_ = 0;  // write pointer after the append
  std::uint64_t last_append_len_ = 0;
};

}  // namespace kvcsd::storage
