#include "vpic/vpic.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/coding.h"
#include "common/keys.h"

namespace kvcsd::vpic {

namespace {

void AppendF32(std::string* out, float f) {
  char buf[4];
  std::memcpy(buf, &f, 4);
  out->append(buf, 4);
}

float ReadF32(const char* p) {
  float f;
  std::memcpy(&f, p, 4);
  return f;
}

}  // namespace

std::string Particle::Key() const { return MakeFixedKey(id, kIdBytes); }

std::string Particle::Payload() const {
  std::string out;
  out.reserve(kPayloadBytes);
  AppendF32(&out, dx);
  AppendF32(&out, dy);
  AppendF32(&out, dz);
  AppendF32(&out, ux);
  AppendF32(&out, uy);
  AppendF32(&out, uz);
  AppendF32(&out, weight);
  AppendF32(&out, energy);
  return out;
}

bool ParsePayload(const std::string& payload, Particle* out) {
  if (payload.size() < kPayloadBytes) return false;
  const char* p = payload.data();
  out->dx = ReadF32(p + 0);
  out->dy = ReadF32(p + 4);
  out->dz = ReadF32(p + 8);
  out->ux = ReadF32(p + 12);
  out->uy = ReadF32(p + 16);
  out->uz = ReadF32(p + 20);
  out->weight = ReadF32(p + 24);
  out->energy = ReadF32(p + kEnergyOffset);
  return true;
}

Dump::Dump(const GeneratorConfig& config) : config_(config) {
  Rng rng(config.seed);
  particles_.resize(config.num_particles);
  for (std::uint64_t i = 0; i < config.num_particles; ++i) {
    Particle& p = particles_[i];
    p.id = i;
    p.dx = static_cast<float>(rng.NextDouble());
    p.dy = static_cast<float>(rng.NextDouble());
    p.dz = static_cast<float>(rng.NextDouble());
    // Thermal momentum components.
    p.ux = static_cast<float>(rng.Normal(0.0, 1.0));
    p.uy = static_cast<float>(rng.Normal(0.0, 1.0));
    p.uz = static_cast<float>(rng.Normal(0.0, 1.0));
    p.weight = 1.0f;
    // Gamma(3, T): sum of three exponentials — long right tail, so high
    // energy thresholds select tiny fractions (cf. tracking "a few high
    // energy particles", paper §II).
    const double e = rng.Exponential(1.0) + rng.Exponential(1.0) +
                     rng.Exponential(1.0);
    p.energy = static_cast<float>(e * config.temperature);
  }
  sorted_energies_.reserve(particles_.size());
  for (const Particle& p : particles_) sorted_energies_.push_back(p.energy);
  std::sort(sorted_energies_.begin(), sorted_energies_.end());
}

std::vector<const Particle*> Dump::FileParticles(std::uint32_t index) const {
  std::vector<const Particle*> out;
  for (std::uint64_t i = index; i < particles_.size();
       i += config_.num_files) {
    out.push_back(&particles_[i]);
  }
  return out;
}

float Dump::EnergyThresholdForSelectivity(double fraction) const {
  if (sorted_energies_.empty()) return 0.0f;
  const auto hits = static_cast<std::uint64_t>(
      fraction * static_cast<double>(sorted_energies_.size()));
  if (hits == 0) return sorted_energies_.back() + 1.0f;
  if (hits >= sorted_energies_.size()) return 0.0f;
  return sorted_energies_[sorted_energies_.size() - hits];
}

std::uint64_t Dump::CountAbove(float threshold) const {
  auto it = std::lower_bound(sorted_energies_.begin(),
                             sorted_energies_.end(), threshold);
  return static_cast<std::uint64_t>(sorted_energies_.end() - it);
}

Dump::HostAggregate Dump::FileEnergyAggregate(std::uint32_t index,
                                              float threshold) const {
  HostAggregate out;
  // FileParticles yields ascending ids, and the 16 B key is big-endian id,
  // so this iteration order IS the device's primary-scan order.
  for (const Particle* p : FileParticles(index)) {
    if (p->energy < threshold) continue;
    const double v = static_cast<double>(p->energy);
    ++out.rows;
    if (!out.valid) {
      out.min = out.max = v;
      out.valid = true;
    } else {
      out.min = std::min(out.min, v);
      out.max = std::max(out.max, v);
    }
    out.sum += v;
  }
  return out;
}

std::string SerializeFile(const std::vector<const Particle*>& particles) {
  std::string out;
  out.reserve(particles.size() * kParticleBytes);
  for (const Particle* p : particles) {
    out += p->Key();
    out += p->Payload();
  }
  return out;
}

bool DeserializeFile(const std::string& raw, std::vector<Particle>* out) {
  if (raw.size() % kParticleBytes != 0) return false;
  const std::size_t count = raw.size() / kParticleBytes;
  out->reserve(out->size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    const char* rec = raw.data() + i * kParticleBytes;
    Particle p;
    p.id = ReadBigEndian64(rec);
    std::string payload(rec + kIdBytes, kPayloadBytes);
    if (!ParsePayload(payload, &p)) return false;
    out->push_back(p);
  }
  return true;
}

}  // namespace kvcsd::vpic
