// Synthetic VPIC particle data (paper §VI-C).
//
// The paper's macro benchmark uses a real VPIC dump: 256 M particles × 48 B
// (16 B particle ID + 32 B payload of 8 numeric attributes, one of which —
// the kinetic energy — drives secondary-index queries). We cannot ship that
// dump, so this module generates a statistically similar synthetic one:
// deterministic IDs, physically-flavoured attributes, and a long-tailed
// kinetic energy (Maxwell–Jüttner-like via a Gamma(3) shape) so that
// "energy > T" thresholds sweep selectivities from 0.1 % to 20 % exactly
// the way the paper's Fig. 12 does.
//
// Layout of the 32 B payload (little-endian f32 × 8):
//   [0]  dx   [4]  dy   [8]  dz     cell-relative position
//   [12] ux   [16] uy   [20] uz     normalized momentum
//   [24] weight
//   [28] energy                     <- secondary index target (offset 28)
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace kvcsd::vpic {

constexpr std::uint32_t kIdBytes = 16;
constexpr std::uint32_t kPayloadBytes = 32;
constexpr std::uint32_t kParticleBytes = kIdBytes + kPayloadBytes;
constexpr std::uint32_t kEnergyOffset = 28;  // within the payload

struct Particle {
  std::uint64_t id = 0;
  float dx = 0, dy = 0, dz = 0;
  float ux = 0, uy = 0, uz = 0;
  float weight = 0;
  float energy = 0;

  // 16 B key: big-endian id + zero pad (lexicographic == numeric order).
  std::string Key() const;
  // 32 B payload as stored in the KV value.
  std::string Payload() const;
};

// Parses a payload back into the attribute fields (id must come from the
// key). Returns false on a short buffer.
bool ParsePayload(const std::string& payload, Particle* out);

struct GeneratorConfig {
  std::uint64_t num_particles = 1 << 20;
  std::uint32_t num_files = 16;  // the paper's dump is 16 binary files
  std::uint64_t seed = 2023;
  double temperature = 0.35;  // energy scale of the Gamma(3) distribution
};

// A generated dump: particles pre-split into `num_files` equal slices,
// mirroring the per-file loader threads of the paper's write phase.
class Dump {
 public:
  explicit Dump(const GeneratorConfig& config);

  const GeneratorConfig& config() const { return config_; }
  std::uint64_t num_particles() const { return particles_.size(); }
  std::uint32_t num_files() const { return config_.num_files; }

  // Particles belonging to file `index` (round-robin split).
  std::vector<const Particle*> FileParticles(std::uint32_t index) const;
  const std::vector<Particle>& all() const { return particles_; }

  // Smallest threshold T such that the fraction of particles with
  // energy >= T is (approximately) `fraction`. Used to drive the Fig. 12
  // selectivity sweep.
  float EnergyThresholdForSelectivity(double fraction) const;

  // Exact number of particles with energy >= threshold.
  std::uint64_t CountAbove(float threshold) const;

  // Host-side reference model for device-side aggregation pushdown.
  // Mirrors nvme::AggregateResult field for field so a bench can compare
  // the two representations directly.
  struct HostAggregate {
    std::uint64_t rows = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    bool valid = false;
  };

  // count/min/max/sum of energy over file `index`'s particles with
  // energy >= threshold, folded in ascending-id order — the same order a
  // device-side primary scan visits records in, so `sum` is bit-identical
  // to the device's double accumulation, not merely approximately equal.
  HostAggregate FileEnergyAggregate(std::uint32_t index,
                                    float threshold) const;

 private:
  GeneratorConfig config_;
  std::vector<Particle> particles_;
  std::vector<float> sorted_energies_;
};

// Serializes a whole file slice as the paper's raw binary format
// (48 B records back to back) — used by the file-loader example.
std::string SerializeFile(const std::vector<const Particle*>& particles);
bool DeserializeFile(const std::string& raw, std::vector<Particle>* out);

}  // namespace kvcsd::vpic
