#include "common/coding.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/random.h"

namespace kvcsd {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string s;
  for (std::uint32_t v : {0u, 1u, 255u, 256u, 0xdeadbeefu,
                          std::numeric_limits<std::uint32_t>::max()}) {
    s.clear();
    PutFixed32(&s, v);
    ASSERT_EQ(s.size(), 4u);
    Slice in(s);
    std::uint32_t out = 0;
    ASSERT_TRUE(GetFixed32(&in, &out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string s;
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1},
        std::uint64_t{0xdeadbeefcafef00dull},
        std::numeric_limits<std::uint64_t>::max()}) {
    s.clear();
    PutFixed64(&s, v);
    Slice in(s);
    std::uint64_t out = 0;
    ASSERT_TRUE(GetFixed64(&in, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, VarintBoundaries) {
  // Each 7-bit boundary changes the encoded length.
  std::string s;
  for (int bits = 0; bits < 64; ++bits) {
    const std::uint64_t v = 1ull << bits;
    s.clear();
    PutVarint64(&s, v);
    EXPECT_EQ(static_cast<int>(s.size()), VarintLength(v));
    Slice in(s);
    std::uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&in, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, VarintRandomRoundTrip) {
  Rng rng(7);
  std::string buf;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    // Mix of magnitudes so all lengths occur.
    std::uint64_t v = rng.Next() >> (rng.Uniform(64));
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  Slice in(buf);
  for (std::uint64_t expected : values) {
    std::uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&in, &out));
    EXPECT_EQ(out, expected);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string s;
  PutVarint64(&s, 1ull << 40);
  Slice in(s);
  std::uint32_t out = 0;
  EXPECT_FALSE(GetVarint32(&in, &out));
}

TEST(CodingTest, TruncatedInputFails) {
  std::string s;
  PutVarint64(&s, 1ull << 42);
  for (std::size_t cut = 0; cut + 1 < s.size(); ++cut) {
    Slice in(s.data(), cut);
    std::uint64_t out = 0;
    EXPECT_FALSE(GetVarint64(&in, &out)) << "cut=" << cut;
  }
  Slice short32(s.data(), 2);
  std::uint32_t f32 = 0;
  EXPECT_FALSE(GetFixed32(&short32, &f32) && short32.size() >= 4);
}

TEST(CodingTest, LengthPrefixedSliceRoundTrip) {
  std::string s;
  PutLengthPrefixedSlice(&s, "hello");
  PutLengthPrefixedSlice(&s, "");
  PutLengthPrefixedSlice(&s, std::string(300, 'z'));
  Slice in(s);
  Slice out;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &out));
  EXPECT_EQ(out, Slice("hello"));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &out));
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &out));
  EXPECT_EQ(out.size(), 300u);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, LengthPrefixedSliceShortBufferFails) {
  std::string s;
  PutLengthPrefixedSlice(&s, "hello world");
  Slice in(s.data(), s.size() - 3);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixedSlice(&in, &out));
}

TEST(SliceTest, CompareIsLexicographic) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abcd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("").compare(Slice("a")), 0);
  EXPECT_TRUE(Slice("abc") < Slice("abd"));
}

TEST(SliceTest, StartsWith) {
  EXPECT_TRUE(Slice("abcdef").starts_with("abc"));
  EXPECT_FALSE(Slice("ab").starts_with("abc"));
  EXPECT_TRUE(Slice("x").starts_with(""));
}

TEST(SliceTest, EmbeddedNulCompares) {
  std::string a("a\0b", 3);
  std::string b("a\0c", 3);
  EXPECT_TRUE(Slice(a) < Slice(b));
  EXPECT_EQ(Slice(a).size(), 3u);
}

}  // namespace
}  // namespace kvcsd
