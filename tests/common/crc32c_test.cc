#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace kvcsd {
namespace {

// Known-answer tests from RFC 3720 / the LevelDB test suite.
TEST(Crc32cTest, KnownVectors) {
  char zeros[32];
  std::memset(zeros, 0, sizeof(zeros));
  EXPECT_EQ(crc32c::Value(zeros, sizeof(zeros)), 0x8a9136aau);

  char ffs[32];
  std::memset(ffs, 0xff, sizeof(ffs));
  EXPECT_EQ(crc32c::Value(ffs, sizeof(ffs)), 0x62a8ab43u);

  char ascending[32];
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<char>(i);
  EXPECT_EQ(crc32c::Value(ascending, sizeof(ascending)), 0x46dd794eu);
}

TEST(Crc32cTest, ValuesDiffer) {
  EXPECT_NE(crc32c::Value("a", 1), crc32c::Value("foo", 3));
  EXPECT_NE(crc32c::Value("foo", 3), crc32c::Value("bar", 3));
}

TEST(Crc32cTest, ExtendMatchesWhole) {
  std::string s = "hello world, this is a crc extension test";
  const std::uint32_t whole = crc32c::Value(s.data(), s.size());
  for (std::size_t split = 0; split <= s.size(); ++split) {
    std::uint32_t part = crc32c::Value(s.data(), split);
    part = crc32c::Extend(part, s.data() + split, s.size() - split);
    EXPECT_EQ(part, whole) << "split=" << split;
  }
}

TEST(Crc32cTest, MaskRoundTrip) {
  const std::uint32_t crc = crc32c::Value("foo", 3);
  EXPECT_NE(crc, crc32c::Mask(crc));
  EXPECT_NE(crc, crc32c::Mask(crc32c::Mask(crc)));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Mask(crc)));
}

}  // namespace
}  // namespace kvcsd
