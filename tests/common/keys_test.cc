#include "common/keys.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/random.h"

namespace kvcsd {
namespace {

TEST(KeysTest, BigEndian64PreservesOrder) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t a = rng.Next(), b = rng.Next();
    std::string ea, eb;
    AppendBigEndian64(&ea, a);
    AppendBigEndian64(&eb, b);
    EXPECT_EQ(a < b, Slice(ea) < Slice(eb));
    EXPECT_EQ(ReadBigEndian64(ea.data()), a);
  }
}

TEST(KeysTest, BigEndian32RoundTrip) {
  for (std::uint32_t v : {0u, 1u, 0x12345678u, 0xffffffffu}) {
    std::string e;
    AppendBigEndian32(&e, v);
    EXPECT_EQ(ReadBigEndian32(e.data()), v);
  }
}

TEST(KeysTest, SignedIntEncodingPreservesOrder) {
  std::vector<std::int32_t> values = {
      std::numeric_limits<std::int32_t>::min(), -100, -1, 0, 1, 100,
      std::numeric_limits<std::int32_t>::max()};
  for (std::size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_LT(OrderEncodeI32(values[i]), OrderEncodeI32(values[i + 1]));
    EXPECT_EQ(OrderDecodeI32(OrderEncodeI32(values[i])), values[i]);
  }
  EXPECT_LT(OrderEncodeI64(-5), OrderEncodeI64(3));
  EXPECT_EQ(OrderDecodeI64(OrderEncodeI64(-123456789ll)), -123456789ll);
}

TEST(KeysTest, FloatEncodingPreservesOrder) {
  std::vector<float> values = {-std::numeric_limits<float>::infinity(),
                               -1e30f, -1.5f, -0.0f, 0.0f, 1e-20f, 2.5f,
                               1e30f, std::numeric_limits<float>::infinity()};
  for (std::size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_LE(OrderEncodeF32(values[i]), OrderEncodeF32(values[i + 1]))
        << values[i] << " vs " << values[i + 1];
  }
  for (float f : values) {
    EXPECT_EQ(OrderDecodeF32(OrderEncodeF32(f)), f);
  }
}

TEST(KeysTest, DoubleEncodingRandomOrderProperty) {
  Rng rng(21);
  for (int i = 0; i < 2000; ++i) {
    double a = rng.Normal(0, 1e6);
    double b = rng.Normal(0, 1e6);
    if (a == b) continue;
    EXPECT_EQ(a < b, OrderEncodeF64(a) < OrderEncodeF64(b));
    EXPECT_EQ(OrderDecodeF64(OrderEncodeF64(a)), a);
  }
}

TEST(KeysTest, FixedKeyHasRequestedWidthAndOrder) {
  std::string k1 = MakeFixedKey(1);
  std::string k2 = MakeFixedKey(2);
  EXPECT_EQ(k1.size(), 16u);
  EXPECT_TRUE(Slice(k1) < Slice(k2));
  EXPECT_EQ(FixedKeyId(k2), 2u);

  std::string w8 = MakeFixedKey(77, 8);
  EXPECT_EQ(w8.size(), 8u);
  EXPECT_EQ(FixedKeyId(w8), 77u);
}

TEST(KeysTest, FixedKeySortsLikeIds) {
  Rng rng(31);
  std::vector<std::uint64_t> ids;
  std::vector<std::string> keys;
  for (int i = 0; i < 500; ++i) {
    ids.push_back(rng.Next());
    keys.push_back(MakeFixedKey(ids.back()));
  }
  std::sort(ids.begin(), ids.end());
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(FixedKeyId(keys[i]), ids[i]);
  }
}

}  // namespace
}  // namespace kvcsd
