#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace kvcsd {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(11);
  const double rate = 2.5;
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, FewCollisionsIn64Bit) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.Next());
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace kvcsd
