#include "common/status.h"

#include <gtest/gtest.h>

namespace kvcsd {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::Busy("a"), Status::Busy("b"));
  EXPECT_FALSE(Status::Busy() == Status::Aborted());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Corruption("bad block");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string(1000, 'x');
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved.size(), 1000u);
}

TEST(ResultTest, ReturnIfErrorMacroPropagates) {
  auto inner = []() -> Status { return Status::IoError("disk"); };
  auto outer = [&]() -> Status {
    KVCSD_RETURN_IF_ERROR(inner());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace kvcsd
