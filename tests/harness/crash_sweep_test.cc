// Exhaustive crash-point sweep: crash the fixed workload at EVERY
// reachable crash-point pass, power-cycle, recover, and hold the device
// to the acknowledged-state contract.
#include "harness/crash_sweep.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace kvcsd::harness {
namespace {

CrashSweepConfig SweepConfig() {
  CrashSweepConfig c;
  c.keyspaces = 2;
  c.keys_per_keyspace = 96;  // small enough to sweep every hit in ctest
  return c;
}

std::string Describe(const CrashSweepReport& report) {
  std::string out = "crash_point=" + report.crash_point;
  for (const std::string& v : report.violations) out += "\n  " + v;
  return out;
}

TEST(CrashSweepTest, DryRunEnumeratesPointsAndRecoversCleanShutdown) {
  auto report = RunCrashSweepCase(SweepConfig(), 0);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->fired);
  EXPECT_GT(report->hits, 4u);  // flush, sync, meta, and compact points
  EXPECT_GT(report->recovery_ticks, 0u);
  EXPECT_TRUE(report->ok()) << Describe(*report);
}

TEST(CrashSweepTest, EveryReachableCrashPointRecovers) {
  const auto dry = RunCrashSweepCase(SweepConfig(), 0);
  ASSERT_TRUE(dry.ok()) << dry.status().ToString();
  const std::uint64_t hits = dry->hits;
  ASSERT_GT(hits, 0u);

  std::set<std::string> points_seen;
  for (std::uint64_t k = 1; k <= hits; ++k) {
    auto report = RunCrashSweepCase(SweepConfig(), k);
    ASSERT_TRUE(report.ok())
        << "case " << k << ": " << report.status().ToString();
    EXPECT_TRUE(report->fired) << "case " << k << " never crashed";
    EXPECT_TRUE(report->ok())
        << "case " << k << ": " << Describe(*report);
    points_seen.insert(report->crash_point);
  }

  // The post-compaction mutation leg must walk the sweep through the
  // incremental re-compaction commit protocol.
  EXPECT_TRUE(points_seen.count("recompact.before_fold"))
      << "sweep never crashed at recompact.before_fold";
  EXPECT_TRUE(points_seen.count("recompact.before_commit"))
      << "sweep never crashed at recompact.before_commit";
  EXPECT_TRUE(points_seen.count("recompact.after_commit"))
      << "sweep never crashed at recompact.after_commit";
}

// Tiny zones make the 4 KiB metadata zone wrap mid-workload, which is
// the only way a sweep reaches the ping-pong crash points
// (meta.before_reset / meta.after_reset). More keyspaces fatten each
// snapshot so the wrap happens sooner; more zones keep the pool big
// enough that post-crash verification can still compact all of them.
CrashSweepConfig TinyZoneConfig() {
  CrashSweepConfig c;
  c.keyspaces = 6;
  c.keys_per_keyspace = 16;
  c.zone_bytes = KiB(4);
  c.num_zones = 96;
  c.write_buffer_bytes = KiB(1);
  return c;
}

TEST(CrashSweepTest, TinyZoneSweepCoversMetadataPingPong) {
  const auto dry = RunCrashSweepCase(TinyZoneConfig(), 0);
  ASSERT_TRUE(dry.ok()) << dry.status().ToString();
  ASSERT_TRUE(dry->ok()) << Describe(*dry);

  bool saw_before_reset = false;
  bool saw_after_reset = false;
  for (std::uint64_t k = 1; k <= dry->hits; ++k) {
    auto report = RunCrashSweepCase(TinyZoneConfig(), k);
    ASSERT_TRUE(report.ok())
        << "case " << k << ": " << report.status().ToString();
    EXPECT_TRUE(report->fired) << "case " << k << " never crashed";
    EXPECT_TRUE(report->ok()) << "case " << k << ": " << Describe(*report);
    saw_before_reset |= report->crash_point == "meta.before_reset";
    saw_after_reset |= report->crash_point == "meta.after_reset";
  }
  EXPECT_TRUE(saw_before_reset) << "sweep never crashed at meta.before_reset";
  EXPECT_TRUE(saw_after_reset) << "sweep never crashed at meta.after_reset";
}

}  // namespace
}  // namespace kvcsd::harness
