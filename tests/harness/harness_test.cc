#include "harness/workloads.h"

#include <gtest/gtest.h>

#include "harness/flags.h"
#include "harness/report.h"

namespace kvcsd::harness {
namespace {

TEST(FlagsTest, ParsesKeyValueAndBooleans) {
  const char* argv[] = {"prog", "--keys=12345", "--scale=0.5", "--full",
                        "--name=abc", "positional"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetUint("keys", 0), 12345u);
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.5);
  EXPECT_TRUE(flags.GetBool("full"));
  EXPECT_FALSE(flags.GetBool("absent"));
  EXPECT_EQ(flags.GetString("name", ""), "abc");
  EXPECT_EQ(flags.GetUint("missing", 42), 42u);
}

TEST(ReportTest, Formatting) {
  EXPECT_EQ(FormatSeconds(Seconds(2)), "2.00 s");
  EXPECT_EQ(FormatSeconds(Milliseconds(5)), "5.00 ms");
  EXPECT_EQ(FormatSeconds(Microseconds(3)), "3.0 us");
  EXPECT_EQ(FormatBytes(GiB(2)), "2.00 GiB");
  EXPECT_EQ(FormatBytes(KiB(3)), "3.0 KiB");
  EXPECT_EQ(FormatBytes(10), "10 B");
  EXPECT_EQ(FormatRatio(4.25), "4.2x");
  EXPECT_EQ(FormatCount(32000000), "32.0M");
  EXPECT_EQ(FormatCount(1000000000ull), "1.0B");
  EXPECT_EQ(FormatCount(12), "12");
}

TEST(WorkloadTest, CsdInsertSmokes) {
  TestbedConfig config = TestbedConfig::Scaled();
  InsertSpec spec;
  spec.total_keys = 20000;
  spec.threads = 4;
  spec.shared_keyspace = true;
  CsdInsertOutcome outcome = RunCsdInsert(config, 8, spec);
  EXPECT_GT(outcome.insert_done, 0u);
  EXPECT_GE(outcome.compaction_done, outcome.insert_done);
  EXPECT_GT(outcome.zns_bytes_written, spec.total_keys * 48);
  EXPECT_GT(outcome.pcie_h2d_bytes, spec.total_keys * 48);
}

TEST(WorkloadTest, LsmInsertModesOrdering) {
  TestbedConfig config = TestbedConfig::Scaled();
  // Shrink the tree so this small dataset triggers flushes + compactions.
  config.db_options.memtable_size = KiB(128);
  config.db_options.level_base_size = KiB(512);
  config.db_options.max_file_size = KiB(128);
  InsertSpec spec;
  spec.total_keys = 30000;
  spec.threads = 2;
  spec.shared_keyspace = true;

  LsmInsertOutcome none =
      RunLsmInsert(config, 8, spec, lsm::CompactionMode::kNone);
  LsmInsertOutcome auto_mode =
      RunLsmInsert(config, 8, spec, lsm::CompactionMode::kAuto);
  EXPECT_GT(none.total_done, 0u);
  // Compaction work can only add to the user-visible time.
  EXPECT_GT(auto_mode.total_done, none.total_done);
  EXPECT_GT(auto_mode.compactions, 0u);
  EXPECT_EQ(none.compactions, 0u);
  EXPECT_GT(auto_mode.device_bytes_written, none.device_bytes_written);
}

TEST(WorkloadTest, MultiKeyspaceInsertScalesOut) {
  TestbedConfig config = TestbedConfig::Scaled();
  InsertSpec one;
  one.total_keys = 20000;
  one.threads = 1;
  one.shared_keyspace = false;
  InsertSpec four;
  four.total_keys = 80000;  // 4x the data over 4 keyspaces
  four.threads = 4;
  four.shared_keyspace = false;

  CsdInsertOutcome t1 = RunCsdInsert(config, 32, one);
  CsdInsertOutcome t4 = RunCsdInsert(config, 32, four);
  // 4x data over 4 keyspaces should take well under 4x the time
  // (parallelism across keyspaces), demonstrating the Fig. 9 scaling.
  EXPECT_LT(t4.insert_done, 3 * t1.insert_done);
}

TEST(WorkloadTest, GetRunnersReturnTimeAndTraffic) {
  TestbedConfig config = TestbedConfig::Scaled();
  CsdTestbed bed(config);
  std::vector<client::KeyspaceHandle> handles(2);
  sim::WaitGroup wg(&bed.sim());
  wg.Add(2);
  for (std::uint32_t t = 0; t < 2; ++t) {
    bed.sim().Spawn([](CsdTestbed* b, std::uint32_t thread,
                       std::vector<client::KeyspaceHandle>* out,
                       sim::WaitGroup* done) -> sim::Task<void> {
      auto ks = (co_await b->client().CreateKeyspace(
                     "g" + std::to_string(thread)))
                    .value();
      auto writer = ks.NewBulkWriter();
      for (std::uint64_t i = 0; i < 5000; ++i) {
        (void)co_await writer.Add(MakeFixedKey(i), std::string(32, 'x'));
      }
      (void)co_await writer.Flush();
      (void)co_await ks.Compact();
      (void)co_await ks.WaitCompaction();
      (*out)[thread] = ks;
      done->Done();
    }(&bed, t, &handles, &wg));
  }
  bed.sim().Run();

  GetSpec spec;
  spec.total_gets = 500;
  spec.keys_per_keyspace = 5000;
  spec.threads = 2;
  QueryOutcome outcome = RunCsdGets(bed, handles, spec);
  EXPECT_GT(outcome.query_time, 0u);
  EXPECT_GT(outcome.device_bytes_read, 0u);
  EXPECT_GT(outcome.pcie_d2h_bytes, 500u * 32);
}

}  // namespace
}  // namespace kvcsd::harness
