#include "harness/json_report.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/flags.h"
#include "harness/report.h"
#include "sim/stats.h"
#include "sim/tracer.h"

namespace kvcsd::harness {
namespace {

Flags MakeFlags(std::vector<std::string> args) {
  args.insert(args.begin(), "bench_test");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(JsonValueTest, ObjectPreservesInsertionOrderAndOverwrites) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zeta", JsonValue::Uint(1));
  obj.Set("alpha", JsonValue::Uint(2));
  obj.Set("zeta", JsonValue::Uint(3));  // overwrite keeps position
  EXPECT_EQ(obj.ToString(), "{\"zeta\":3,\"alpha\":2}");
}

TEST(JsonValueTest, EscapesStrings) {
  JsonValue obj = JsonValue::Object();
  obj.Set("k", JsonValue::Str("a\"b\\c\nd"));
  EXPECT_EQ(obj.ToString(), "{\"k\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(ParseJsonTest, RoundTripsBuiltDocument) {
  JsonValue doc = JsonValue::Object();
  doc.Set("str", JsonValue::Str("hello \"world\""));
  doc.Set("uint", JsonValue::Uint(18446744073709551615ull));
  doc.Set("num", JsonValue::Num(1234.5678));
  doc.Set("yes", JsonValue::Bool(true));
  doc.Set("no", JsonValue::Bool(false));
  doc.Set("nil", JsonValue());
  JsonValue arr = JsonValue::Array();
  arr.Push(JsonValue::Uint(1));
  arr.Push(JsonValue::Str("two"));
  doc.Set("arr", std::move(arr));

  const std::string text = doc.ToString();
  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Re-serializing the parse result reproduces the input byte for byte.
  EXPECT_EQ(parsed->ToString(), text);
}

TEST(ParseJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
}

TEST(ParseJsonTest, ParsesTracerOutput) {
  sim::Tracer tracer;
  tracer.Enable();
  tracer.CompleteSpan(tracer.Track("dev"), "dispatch", 1000, 2500,
                      {{"keyspace", "ks0"}});
  tracer.Instant(tracer.Track("recovery"), "replayed", 3000);
  auto parsed = ParseJson(tracer.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 2 metadata thread_name events + process_name + 2 real events.
  EXPECT_EQ(events->elements().size(), 5u);
}

TEST(JsonReporterTest, SchemaRoundTrip) {
  Flags flags = MakeFlags({"--keys=4096", "--json=/tmp/out.json",
                           "--trace=/tmp/trace.json",
                           "--telemetry=/tmp/telemetry.json"});
  JsonReporter report("unit_test", flags);
  report.AddMetric("csd.put.keys_per_sec", 12345.5);
  report.AddMetric("csd.put.ticks", std::uint64_t{777});

  sim::Stats stats;
  stats.counter("zns.klog.appends").Add(42);
  stats.histogram("device.cmd.put_ns").Record(100);
  stats.histogram("device.cmd.put_ns").Record(900);
  report.AddStats(stats);

  Table table("t", {"a", "b"});
  table.AddRow({"1", "2"});
  report.AddTable(table);

  auto parsed = ParseJson(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->Find("schema_version")->uint_value(),
            static_cast<std::uint64_t>(JsonReporter::kSchemaVersion));
  EXPECT_EQ(parsed->Find("bench")->string_value(), "unit_test");
  EXPECT_NE(parsed->Find("wall_clock_unix"), nullptr);

  // args carries the workload flags but not the output paths.
  const JsonValue* args = parsed->Find("args");
  ASSERT_NE(args, nullptr);
  ASSERT_NE(args->Find("keys"), nullptr);
  EXPECT_EQ(args->Find("keys")->string_value(), "4096");
  EXPECT_EQ(args->Find("json"), nullptr);
  EXPECT_EQ(args->Find("trace"), nullptr);
  EXPECT_EQ(args->Find("telemetry"), nullptr);

  const JsonValue* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_DOUBLE_EQ(metrics->Find("csd.put.keys_per_sec")->number_value(),
                   12345.5);
  EXPECT_EQ(metrics->Find("csd.put.ticks")->uint_value(), 777u);

  EXPECT_EQ(parsed->Find("counters")->Find("zns.klog.appends")->uint_value(),
            42u);
  const JsonValue* hist =
      parsed->Find("histograms")->Find("device.cmd.put_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->uint_value(), 2u);
  EXPECT_EQ(hist->Find("min")->uint_value(), 100u);
  EXPECT_EQ(hist->Find("max")->uint_value(), 900u);
  ASSERT_NE(hist->Find("p99"), nullptr);
  ASSERT_NE(hist->Find("p999"), nullptr);

  const JsonValue* tables = parsed->Find("tables");
  ASSERT_NE(tables, nullptr);
  ASSERT_EQ(tables->elements().size(), 1u);
  EXPECT_EQ(tables->elements()[0].Find("title")->string_value(), "t");

  EXPECT_EQ(report.json_path(), "/tmp/out.json");
}

// Two identically-fed reporters must serialize byte-identically once the
// wall clock is excluded — this is what lets CI diff reports exactly.
TEST(JsonReporterTest, DeterministicModuloWallClock) {
  auto build = [] {
    Flags flags = MakeFlags({"--keys=100", "--seed=7"});
    JsonReporter report("determinism", flags);
    report.AddMetric("a.keys_per_sec", 0.1 + 0.2);  // non-trivial double
    report.AddMetric("b.ticks", std::uint64_t{9000000000000000000ull});
    sim::Stats stats;
    stats.histogram("h_ns").Record(3);
    report.AddStats(stats);
    return report.ToJson(/*include_wall_clock=*/false);
  };
  const std::string first = build();
  EXPECT_EQ(first, build());
  EXPECT_EQ(first.find("wall_clock_unix"), std::string::npos);

  // With the stamp included, the only difference is that one field.
  Flags flags = MakeFlags({"--keys=100", "--seed=7"});
  JsonReporter stamped("determinism", flags);
  EXPECT_NE(stamped.ToJson(true).find("wall_clock_unix"),
            std::string::npos);
}

TEST(JsonReporterTest, WriteIfRequestedNeedsPath) {
  Flags flags = MakeFlags({"--keys=1"});
  JsonReporter report("no_path", flags);
  EXPECT_FALSE(report.WriteIfRequested());
}

}  // namespace
}  // namespace kvcsd::harness
