#include "hostenv/fs.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "../testutil.h"

namespace kvcsd::hostenv {
namespace {

struct FsFixture {
  sim::Simulation sim;
  sim::CpuPool cpu{&sim, "host", 4};
  storage::BlockSsd ssd{&sim, storage::BlockSsdConfig{}};
  PageCache cache{MiB(64)};
  Fs fs{&sim, &cpu, &ssd, &cache, CostModel::Host()};

  std::span<const std::byte> Bytes(const std::string& s) {
    return std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(s.data()), s.size());
  }
};

TEST(FsTest, CreateOpenExists) {
  FsFixture f;
  auto h = f.fs.Create("000001.sst");
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(f.fs.Exists("000001.sst"));
  EXPECT_FALSE(f.fs.Exists("other"));
  EXPECT_TRUE(f.fs.Open("000001.sst").ok());
  EXPECT_EQ(f.fs.Open("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(f.fs.Create("000001.sst").status().code(),
            StatusCode::kAlreadyExists);
}

TEST(FsTest, AppendThenReadBack) {
  FsFixture f;
  auto h = f.fs.Create("wal").value();
  const std::string payload = "record-one|record-two|record-three";
  ASSERT_TRUE(testutil::RunSim(f.sim, f.fs.Append(h, f.Bytes(payload))).ok());
  EXPECT_EQ(f.fs.FileSize("wal").value(), payload.size());

  std::string out(10, '\0');
  ASSERT_TRUE(testutil::RunSim(
                  f.sim, f.fs.Pread(h, 11, std::span<std::byte>(
                                               reinterpret_cast<std::byte*>(
                                                   out.data()),
                                               out.size())))
                  .ok());
  EXPECT_EQ(out, "record-two");
}

TEST(FsTest, PreadBeyondEofFails) {
  FsFixture f;
  auto h = f.fs.Create("x").value();
  ASSERT_TRUE(testutil::RunSim(f.sim, f.fs.Append(h, f.Bytes("abc"))).ok());
  std::byte buf[8];
  auto s = testutil::RunSim(f.sim, f.fs.Pread(h, 0, std::span(buf)));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(FsTest, SyncWritesBackAndCommitsJournal) {
  FsFixture f;
  auto h = f.fs.Create("table").value();
  std::string data(KiB(100), 'd');
  ASSERT_TRUE(testutil::RunSim(f.sim, f.fs.Append(h, f.Bytes(data))).ok());
  EXPECT_EQ(f.fs.device_bytes_written(), 0u);  // below writeback threshold
  ASSERT_TRUE(testutil::RunSim(f.sim, f.fs.Sync(h)).ok());
  EXPECT_EQ(f.fs.device_bytes_written(), KiB(100));
  EXPECT_EQ(f.fs.journal_commits(), 1u);
}

TEST(FsTest, LargeAppendTriggersWriteback) {
  FsFixture f;
  auto h = f.fs.Create("big").value();
  std::string chunk(MiB(4), 'z');
  ASSERT_TRUE(testutil::RunSim(f.sim, f.fs.Append(h, f.Bytes(chunk))).ok());
  ASSERT_TRUE(testutil::RunSim(f.sim, f.fs.Append(h, f.Bytes(chunk))).ok());
  // 8 MiB dirty hits the writeback threshold.
  EXPECT_GE(f.fs.device_bytes_written(), MiB(8));
}

TEST(FsTest, CachedReadAvoidsDevice) {
  FsFixture f;
  auto h = f.fs.Create("t").value();
  std::string data(KiB(16), 'q');
  ASSERT_TRUE(testutil::RunSim(f.sim, f.fs.Append(h, f.Bytes(data))).ok());
  ASSERT_TRUE(testutil::RunSim(f.sim, f.fs.Sync(h)).ok());
  // Freshly written pages are cached: this read is free of device traffic.
  const std::uint64_t before = f.fs.device_bytes_read();
  std::byte buf[4096];
  ASSERT_TRUE(testutil::RunSim(f.sim, f.fs.Pread(h, 0, std::span(buf))).ok());
  EXPECT_EQ(f.fs.device_bytes_read(), before);

  // After dropping the cache the same read hits the device.
  f.cache.DropAll();
  ASSERT_TRUE(testutil::RunSim(f.sim, f.fs.Pread(h, 0, std::span(buf))).ok());
  EXPECT_GT(f.fs.device_bytes_read(), before);
}

TEST(FsTest, ReadAmplificationIsBlockGranular) {
  FsFixture f;
  auto h = f.fs.Create("t").value();
  std::string data(KiB(64), 'a');
  ASSERT_TRUE(testutil::RunSim(f.sim, f.fs.Append(h, f.Bytes(data))).ok());
  ASSERT_TRUE(testutil::RunSim(f.sim, f.fs.Sync(h)).ok());
  f.cache.DropAll();
  // Reading 48 bytes pulls a whole 4 KiB page from the device.
  std::byte tiny[48];
  ASSERT_TRUE(testutil::RunSim(f.sim, f.fs.Pread(h, 100, std::span(tiny))).ok());
  EXPECT_EQ(f.fs.device_bytes_read(), 4096u);
}

TEST(FsTest, DeleteInvalidatesHandleAndName) {
  FsFixture f;
  auto h = f.fs.Create("gone").value();
  ASSERT_TRUE(testutil::RunSim(f.sim, f.fs.Append(h, f.Bytes("abc"))).ok());
  ASSERT_TRUE(testutil::RunSim(f.sim, f.fs.Delete("gone")).ok());
  EXPECT_FALSE(f.fs.Exists("gone"));
  std::byte buf[1];
  auto s = testutil::RunSim(f.sim, f.fs.Pread(h, 0, std::span(buf)));
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  auto s2 = testutil::RunSim(f.sim, f.fs.Delete("gone"));
  EXPECT_EQ(s2.code(), StatusCode::kNotFound);
}

TEST(FsTest, ListFilesIsSorted) {
  FsFixture f;
  (void)f.fs.Create("b").value();
  (void)f.fs.Create("a").value();
  (void)f.fs.Create("c").value();
  EXPECT_EQ(f.fs.ListFiles(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(FsTest, UnflushedTailReadNeedsNoDevice) {
  FsFixture f;
  auto h = f.fs.Create("t").value();
  std::string data(KiB(4), 'm');
  ASSERT_TRUE(testutil::RunSim(f.sim, f.fs.Append(h, f.Bytes(data))).ok());
  f.cache.DropAll();
  std::byte buf[128];
  ASSERT_TRUE(testutil::RunSim(f.sim, f.fs.Pread(h, 0, std::span(buf))).ok());
  EXPECT_EQ(f.fs.device_bytes_read(), 0u);  // data only in memory
}

}  // namespace
}  // namespace kvcsd::hostenv
