#include "hostenv/page_cache.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace kvcsd::hostenv {
namespace {

TEST(PageCacheTest, MissThenHit) {
  PageCache cache(MiB(1));
  EXPECT_FALSE(cache.Lookup(1, 0));
  cache.Insert(1, 0);
  EXPECT_TRUE(cache.Lookup(1, 0));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PageCacheTest, DistinctFilesDoNotCollide) {
  PageCache cache(MiB(1));
  cache.Insert(1, 7);
  EXPECT_FALSE(cache.Lookup(2, 7));
  EXPECT_TRUE(cache.Lookup(1, 7));
}

TEST(PageCacheTest, EvictsLeastRecentlyUsed) {
  PageCache cache(4 * 4096);  // 4 pages
  for (std::uint64_t b = 0; b < 4; ++b) cache.Insert(1, b);
  EXPECT_TRUE(cache.Lookup(1, 0));  // touch 0 -> MRU
  cache.Insert(1, 4);               // evicts block 1 (LRU)
  EXPECT_TRUE(cache.Lookup(1, 0));
  EXPECT_FALSE(cache.Lookup(1, 1));
  EXPECT_TRUE(cache.Lookup(1, 2));
  EXPECT_TRUE(cache.Lookup(1, 4));
}

TEST(PageCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  PageCache cache(4 * 4096);
  cache.Insert(1, 0);
  cache.Insert(1, 0);
  EXPECT_EQ(cache.resident_pages(), 1u);
}

TEST(PageCacheTest, InvalidateFileRemovesOnlyThatFile) {
  PageCache cache(MiB(1));
  cache.Insert(1, 0);
  cache.Insert(1, 1);
  cache.Insert(2, 0);
  cache.InvalidateFile(1);
  EXPECT_FALSE(cache.Lookup(1, 0));
  EXPECT_FALSE(cache.Lookup(1, 1));
  EXPECT_TRUE(cache.Lookup(2, 0));
}

TEST(PageCacheTest, DropAllEmptiesCache) {
  PageCache cache(MiB(1));
  for (std::uint64_t b = 0; b < 100; ++b) cache.Insert(3, b);
  EXPECT_EQ(cache.resident_pages(), 100u);
  cache.DropAll();
  EXPECT_EQ(cache.resident_pages(), 0u);
  EXPECT_FALSE(cache.Lookup(3, 50));
}

}  // namespace
}  // namespace kvcsd::hostenv
