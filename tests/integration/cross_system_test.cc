// Cross-system integration tests: the same dataset loaded into KV-CSD and
// into the RocksLite baseline must answer every query identically, and
// both must agree with ground truth computed directly from the generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "../testutil.h"
#include "common/keys.h"
#include "harness/testbed.h"
#include "nvme/skey.h"
#include "sim/sync.h"
#include "vpic/vpic.h"

namespace kvcsd {
namespace {

using harness::CsdTestbed;
using harness::LsmTestbed;
using harness::TestbedConfig;

class CrossSystemTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kParticles = 40000;

  CrossSystemTest()
      : dump_(MakeGen()),
        csd_(TestbedConfig::Scaled()),
        lsm_(TestbedConfig::Scaled()) {}

  static vpic::GeneratorConfig MakeGen() {
    vpic::GeneratorConfig gen;
    gen.num_particles = kParticles;
    gen.num_files = 4;
    gen.seed = 31337;
    return gen;
  }

  void LoadBoth() {
    // KV-CSD: one keyspace holding the whole dump.
    testutil::RunSim(csd_.sim(), [](CsdTestbed* bed, const vpic::Dump* dump,
                                    client::KeyspaceHandle* out)
                                     -> sim::Task<void> {
      auto ks = (co_await bed->client().CreateKeyspace("x")).value();
      auto writer = ks.NewBulkWriter();
      for (const vpic::Particle& p : dump->all()) {
        EXPECT_TRUE((co_await writer.Add(p.Key(), p.Payload())).ok());
      }
      EXPECT_TRUE((co_await writer.Flush()).ok());
      EXPECT_TRUE((co_await ks.Compact()).ok());
      EXPECT_TRUE((co_await ks.WaitCompaction()).ok());
      EXPECT_TRUE((co_await ks.CreateSecondaryIndexF32(
                       "energy", vpic::kEnergyOffset))
                      .ok());
      *out = ks;
    }(&csd_, &dump_, &keyspace_));

    // RocksLite: primary + auxiliary records, auto compaction.
    testutil::RunSim(lsm_.sim(), [](LsmTestbed* bed, const vpic::Dump* dump,
                                    std::unique_ptr<lsm::Db>* out)
                                     -> sim::Task<void> {
      auto db =
          (co_await bed->OpenDb("x", lsm::CompactionMode::kAuto)).value();
      for (const vpic::Particle& p : dump->all()) {
        EXPECT_TRUE(
            (co_await db->Put('\x00' + p.Key(), p.Payload())).ok());
        std::string aux(1, '\x01');
        aux += nvme::EncodeSecondaryF32(p.energy);
        AppendBigEndian64(&aux, p.id);
        EXPECT_TRUE((co_await db->Put(aux, p.Key())).ok());
      }
      EXPECT_TRUE((co_await db->Flush()).ok());
      co_await db->WaitForIdle();
      *out = std::move(db);
    }(&lsm_, &dump_, &db_));
  }

  std::set<std::uint64_t> CsdEnergyQuery(float threshold) {
    std::set<std::uint64_t> ids;
    testutil::RunSim(csd_.sim(), [](client::KeyspaceHandle ks, float t,
                                    std::set<std::uint64_t>* out)
                                     -> sim::Task<void> {
      std::vector<std::pair<std::string, std::string>> hits;
      EXPECT_TRUE(
          (co_await ks.QuerySecondaryRangeF32("energy", t, 1e30f, 0, &hits))
              .ok());
      for (const auto& [pkey, payload] : hits) {
        out->insert(FixedKeyId(pkey));
      }
    }(keyspace_, threshold, &ids));
    return ids;
  }

  std::set<std::uint64_t> LsmEnergyQuery(float threshold) {
    std::set<std::uint64_t> ids;
    testutil::RunSim(lsm_.sim(), [](lsm::Db* db, float t,
                                    std::set<std::uint64_t>* out)
                                     -> sim::Task<void> {
      std::string lo(1, '\x01');
      lo += nvme::EncodeSecondaryF32(t);
      std::string hi(1, '\x01');
      hi += std::string(13, '\xff');
      std::vector<std::pair<std::string, std::string>> aux;
      EXPECT_TRUE((co_await db->RangeScan(lo, hi, 0, &aux)).ok());
      std::string value;
      for (const auto& [akey, pkey] : aux) {
        // Two-step: fetch the full particle via the primary key.
        EXPECT_TRUE((co_await db->Get('\x00' + pkey, &value)).ok());
        out->insert(FixedKeyId(pkey));
      }
    }(db_.get(), threshold, &ids));
    return ids;
  }

  vpic::Dump dump_;
  CsdTestbed csd_;
  LsmTestbed lsm_;
  client::KeyspaceHandle keyspace_;
  std::unique_ptr<lsm::Db> db_;
};

TEST_F(CrossSystemTest, PointLookupsAgree) {
  LoadBoth();
  testutil::RunSim(csd_.sim(), [](client::KeyspaceHandle ks,
                                  const vpic::Dump* dump) -> sim::Task<void> {
    for (std::uint64_t id : {std::uint64_t{0}, std::uint64_t{777},
                             kParticles - 1}) {
      auto v = co_await ks.Get(dump->all()[id].Key());
      EXPECT_TRUE(v.ok());
      if (v.ok()) {
        EXPECT_EQ(*v, dump->all()[id].Payload());
      }
    }
  }(keyspace_, &dump_));
  testutil::RunSim(lsm_.sim(), [](lsm::Db* db,
                                  const vpic::Dump* dump) -> sim::Task<void> {
    std::string v;
    for (std::uint64_t id : {std::uint64_t{0}, std::uint64_t{777},
                             kParticles - 1}) {
      EXPECT_TRUE(
          (co_await db->Get('\x00' + dump->all()[id].Key(), &v)).ok());
      EXPECT_EQ(v, dump->all()[id].Payload());
    }
  }(db_.get(), &dump_));
}

TEST_F(CrossSystemTest, SecondaryQueriesMatchGroundTruthAndEachOther) {
  LoadBoth();
  for (double fraction : {0.002, 0.02, 0.1}) {
    const float threshold = dump_.EnergyThresholdForSelectivity(fraction);
    std::set<std::uint64_t> truth;
    for (const vpic::Particle& p : dump_.all()) {
      if (p.energy >= threshold) truth.insert(p.id);
    }
    std::set<std::uint64_t> csd_ids = CsdEnergyQuery(threshold);
    std::set<std::uint64_t> lsm_ids = LsmEnergyQuery(threshold);
    EXPECT_EQ(csd_ids, truth) << "fraction=" << fraction;
    EXPECT_EQ(lsm_ids, truth) << "fraction=" << fraction;
  }
}

TEST_F(CrossSystemTest, PrimaryRangeScansAgree) {
  LoadBoth();
  const std::uint64_t lo_id = 1000, hi_id = 1250;
  std::vector<std::pair<std::string, std::string>> csd_hits;
  testutil::RunSim(
      csd_.sim(),
      [](client::KeyspaceHandle ks, std::uint64_t lo, std::uint64_t hi,
         std::vector<std::pair<std::string, std::string>>* out)
          -> sim::Task<void> {
        EXPECT_TRUE((co_await ks.Scan(MakeFixedKey(lo), MakeFixedKey(hi), 0,
                                      out))
                        .ok());
      }(keyspace_, lo_id, hi_id, &csd_hits));
  std::vector<std::pair<std::string, std::string>> lsm_hits;
  testutil::RunSim(
      lsm_.sim(),
      [](lsm::Db* db, std::uint64_t lo, std::uint64_t hi,
         std::vector<std::pair<std::string, std::string>>* out)
          -> sim::Task<void> {
        EXPECT_TRUE((co_await db->RangeScan('\x00' + MakeFixedKey(lo),
                                            '\x00' + MakeFixedKey(hi), 0,
                                            out))
                        .ok());
      }(db_.get(), lo_id, hi_id, &lsm_hits));

  ASSERT_EQ(csd_hits.size(), hi_id - lo_id + 1);
  ASSERT_EQ(lsm_hits.size(), csd_hits.size());
  for (std::size_t i = 0; i < csd_hits.size(); ++i) {
    EXPECT_EQ('\x00' + csd_hits[i].first, lsm_hits[i].first);
    EXPECT_EQ(csd_hits[i].second, lsm_hits[i].second);
  }
}

}  // namespace
}  // namespace kvcsd
