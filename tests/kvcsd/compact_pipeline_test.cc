// End-to-end tests for the multi-core compaction pipeline: results must
// be bit-identical regardless of `soc_cores` (run layout, merge order and
// tie-breaks are all core-count independent), and more cores must not
// make compaction slower — parallel run generation should make it
// strictly faster.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "../testutil.h"
#include "client/client.h"
#include "common/keys.h"
#include "kvcsd/device.h"

namespace kvcsd::device {
namespace {

DeviceConfig SmallDevice(std::uint32_t cores) {
  DeviceConfig c;
  c.zns.zone_size = MiB(1);
  c.zns.num_zones = 256;
  c.zns.nand.channels = 8;
  c.dram_bytes = KiB(512);
  c.write_buffer_bytes = KiB(8);
  c.soc_cores = cores;
  return c;
}

struct Fixture {
  explicit Fixture(std::uint32_t cores) : dev{&sim, SmallDevice(cores), &qp} {
    dev.Start();
  }

  sim::Simulation sim;
  nvme::QueueSet qp{&sim, nvme::PcieConfig{}};
  Device dev;
  sim::CpuPool host{&sim, "host", 8};
  client::Client db{&qp, &host, hostenv::CostModel::Host()};
};

// Everything observable about a compacted keyspace that must not depend
// on the core count: entry count, both pivot sketches, and query results.
struct Outcome {
  bool ok = false;
  Tick compact_ticks = 0;
  std::uint64_t num_kvs = 0;
  std::vector<std::string> pidx_pivots;
  std::vector<std::string> sidx_pivots;
  std::vector<std::pair<std::string, std::string>> scan;
  std::vector<std::pair<std::string, std::string>> sidx_rows;
  std::vector<std::string> gets;
};

std::string EnergyValue(std::uint64_t id) {
  std::string v(28, 'p');
  const float energy = static_cast<float>(id % 97);
  char buf[4];
  std::memcpy(buf, &energy, 4);
  v.append(buf, 4);
  return v;
}

sim::Task<void> Workload(client::Client* db, Device* dev,
                         sim::Simulation* sim, std::uint64_t keys,
                         Outcome* out) {
  auto created = co_await db->CreateKeyspace("pipeline");
  KVCSD_CO_ASSERT_OK(created);
  auto ks = std::move(*created);

  // Shuffled insertion order so run generation sees unsorted zones.
  std::uint64_t stride = 701;
  while (keys % stride == 0) ++stride;
  auto writer = ks.NewBulkWriter();
  for (std::uint64_t i = 0; i < keys; ++i) {
    const std::uint64_t id = (i * stride) % keys;
    KVCSD_CO_ASSERT_OK(co_await writer.Add(MakeFixedKey(id), EnergyValue(id)));
  }
  KVCSD_CO_ASSERT_OK(co_await writer.Flush());

  const Tick start = sim->Now();
  nvme::SecondaryIndexSpec energy;
  energy.name = "energy";
  energy.value_offset = 28;
  energy.value_length = 4;
  energy.type = nvme::SecondaryKeyType::kF32;
  std::vector<nvme::SecondaryIndexSpec> specs;
  specs.push_back(std::move(energy));
  KVCSD_CO_ASSERT_OK(co_await ks.CompactWithIndexes(std::move(specs)));
  KVCSD_CO_ASSERT_OK(co_await ks.WaitCompaction());
  out->compact_ticks = sim->Now() - start;

  auto stat = co_await ks.GetStat();
  KVCSD_CO_ASSERT_OK(stat);
  out->num_kvs = stat->num_kvs;

  // Device-internal index layout.
  auto found = dev->keyspaces().Find("pipeline");
  KVCSD_CO_ASSERT_OK(found);
  for (const SketchEntry& e : (*found)->pidx_sketch) {
    out->pidx_pivots.push_back(e.pivot);
  }
  auto sidx = (*found)->secondary_indexes.find("energy");
  KVCSD_CO_ASSERT(sidx != (*found)->secondary_indexes.end());
  for (const SketchEntry& e : sidx->second.sketch) {
    out->sidx_pivots.push_back(e.pivot);
  }

  // Query-visible results.
  KVCSD_CO_ASSERT_OK(co_await ks.Scan(MakeFixedKey(keys / 4),
                                MakeFixedKey(keys / 4 + 100), 0, &out->scan));
  for (std::uint64_t probe = 0; probe < 16; ++probe) {
    auto v = co_await ks.Get(MakeFixedKey((probe * keys) / 16));
    KVCSD_CO_ASSERT_OK(v);
    out->gets.push_back(std::move(*v));
  }
  KVCSD_CO_ASSERT_OK(co_await ks.QuerySecondaryRangeF32("energy", 10.0f, 14.0f, 0,
                                                  &out->sidx_rows));
  out->ok = true;
}

Outcome RunWorkload(std::uint32_t cores, std::uint64_t keys) {
  Fixture f(cores);
  Outcome out;
  testutil::RunSim(f.sim, Workload(&f.db, &f.dev, &f.sim, keys, &out));
  EXPECT_TRUE(out.ok) << "workload aborted at " << cores << " cores";
  return out;
}

constexpr std::uint64_t kKeys = 6000;

TEST(CompactPipelineTest, ResultsIdenticalAcrossCoreCounts) {
  Outcome one = RunWorkload(1, kKeys);
  Outcome four = RunWorkload(4, kKeys);
  ASSERT_TRUE(one.ok && four.ok);

  EXPECT_EQ(one.num_kvs, kKeys);
  EXPECT_EQ(four.num_kvs, one.num_kvs);
  // Index layout: same blocks split at the same pivots, in both the
  // primary and the fused secondary index.
  EXPECT_GT(one.pidx_pivots.size(), 1u);
  EXPECT_EQ(four.pidx_pivots, one.pidx_pivots);
  EXPECT_GT(one.sidx_pivots.size(), 0u);
  EXPECT_EQ(four.sidx_pivots, one.sidx_pivots);
  // Query results: scans, point gets, secondary range.
  EXPECT_EQ(one.scan.size(), 101u);
  EXPECT_EQ(four.scan, one.scan);
  EXPECT_EQ(four.gets, one.gets);
  EXPECT_GT(one.sidx_rows.size(), 0u);
  EXPECT_EQ(four.sidx_rows, one.sidx_rows);
}

TEST(CompactPipelineTest, MoreCoresCompactStrictlyFaster) {
  Outcome one = RunWorkload(1, kKeys);
  Outcome four = RunWorkload(4, kKeys);
  ASSERT_TRUE(one.ok && four.ok);
  // Phase-1 run generation fans out across cores; with a serial device
  // everything in the pipeline degrades to sequential execution.
  EXPECT_LT(four.compact_ticks, one.compact_ticks);
}

}  // namespace
}  // namespace kvcsd::device
