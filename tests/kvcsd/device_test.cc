// End-to-end tests of the KV-CSD device through the public client API:
// every command travels client -> PCIe/NVMe queue pair -> device and back.
#include "kvcsd/device.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "../testutil.h"
#include "client/client.h"
#include "common/keys.h"
#include "common/random.h"

namespace kvcsd::device {
namespace {

DeviceConfig SmallDevice() {
  DeviceConfig c;
  c.zns.zone_size = MiB(1);
  c.zns.num_zones = 256;
  c.zns.nand.channels = 8;
  c.dram_bytes = KiB(512);       // tiny: forces multi-run external sorts
  c.write_buffer_bytes = KiB(8);  // tiny: forces many log flushes
  return c;
}

struct CsdFixture {
  sim::Simulation sim;
  nvme::QueueSet qp{&sim, nvme::PcieConfig{}};
  Device dev{&sim, SmallDevice(), &qp};
  sim::CpuPool host{&sim, "host", 8};
  client::Client db{&qp, &host, hostenv::CostModel::Host()};

  CsdFixture() { dev.Start(); }

  // value = 28 pad bytes + f32 energy (little-endian), like a mini VPIC
  // particle payload.
  static std::string EnergyValue(float energy) {
    std::string v(28, 'p');
    char buf[4];
    std::memcpy(buf, &energy, 4);
    v.append(buf, 4);
    return v;
  }
};

TEST(CsdTest, CreateOpenDropKeyspace) {
  CsdFixture f;
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = co_await db->CreateKeyspace("ks1");
    EXPECT_TRUE(ks.ok());
    auto dup = co_await db->CreateKeyspace("ks1");
    EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
    auto opened = co_await db->OpenKeyspace("ks1");
    EXPECT_TRUE(opened.ok());
    EXPECT_EQ(opened->id(), ks->id());
    EXPECT_TRUE((co_await db->DropKeyspace("ks1")).ok());
    auto gone = co_await db->OpenKeyspace("ks1");
    EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  }(&f.db));
}

TEST(CsdTest, PutCompactGet) {
  CsdFixture f;
  constexpr int kKeys = 3000;
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("ks")).value();
    Rng rng(5);
    for (int i = 0; i < kKeys; ++i) {
      // Random insertion order: compaction must sort.
      const std::uint64_t id = (rng.Next() % 100000) * 10 +
                               static_cast<std::uint64_t>(i % 10);
      EXPECT_TRUE((co_await ks.Put(MakeFixedKey(id),
                                   "value-" + std::to_string(id)))
                      .ok());
    }
    EXPECT_TRUE((co_await ks.Compact()).ok());
    EXPECT_TRUE((co_await ks.WaitCompaction()).ok());

    auto stat = co_await ks.GetStat();
    EXPECT_TRUE(stat.ok());
    EXPECT_EQ(stat->state, "COMPACTED");
  }(&f.db));
  EXPECT_EQ(f.dev.compactions_done(), 1u);
}

TEST(CsdTest, BulkPutRoundTripsAllData) {
  CsdFixture f;
  constexpr int kKeys = 12000;
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("bulk")).value();
    auto writer = ks.NewBulkWriter();
    for (int i = 0; i < kKeys; ++i) {
      EXPECT_TRUE((co_await writer.Add(
                       MakeFixedKey(static_cast<std::uint64_t>(i)),
                       "v" + std::to_string(i)))
                      .ok());
    }
    EXPECT_TRUE((co_await writer.Flush()).ok());
    EXPECT_GT(writer.frames_sent(), 1u);
    EXPECT_TRUE((co_await ks.Compact()).ok());
    EXPECT_TRUE((co_await ks.WaitCompaction()).ok());

    std::string value;
    for (int i : {0, 1, 2499, 11998, 11999}) {
      auto v = co_await ks.Get(MakeFixedKey(static_cast<std::uint64_t>(i)));
      EXPECT_TRUE(v.ok()) << i << ": " << v.status().ToString();
      if (v.ok()) {
        EXPECT_EQ(*v, "v" + std::to_string(i));
      }
    }
    auto missing = co_await ks.Get(MakeFixedKey(999999));
    EXPECT_TRUE(missing.status().IsNotFound());
  }(&f.db));
}

TEST(CsdTest, QueriesRequireCompactedState) {
  CsdFixture f;
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("raw")).value();
    EXPECT_TRUE((co_await ks.Put(MakeFixedKey(1), "v")).ok());
    auto denied = co_await ks.Get(MakeFixedKey(1));
    EXPECT_EQ(denied.status().code(), StatusCode::kFailedPrecondition);
  }(&f.db));
}

TEST(CsdTest, WritesRejectedWhileCompacting) {
  CsdFixture f;
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("locked")).value();
    for (int i = 0; i < 2000; ++i) {
      EXPECT_TRUE((co_await ks.Put(
                       MakeFixedKey(static_cast<std::uint64_t>(i)), "v"))
                      .ok());
    }
    EXPECT_TRUE((co_await ks.Compact()).ok());
    // Keyspace is COMPACTING right after the trigger returns: writes are
    // rejected kBusy — a retryable status, the logs are merely locked.
    auto rejected = co_await ks.Put(MakeFixedKey(99999), "late");
    EXPECT_EQ(rejected.code(), StatusCode::kBusy);
    EXPECT_TRUE(rejected.IsRetryable());
    EXPECT_TRUE((co_await ks.WaitCompaction()).ok());
    // Once COMPACTED the keyspace is mutable again (delta mode).
    EXPECT_TRUE((co_await ks.Put(MakeFixedKey(99998), "later")).ok());
    auto readback = co_await ks.Get(MakeFixedKey(99998));
    EXPECT_TRUE(readback.ok());
    EXPECT_EQ(*readback, "later");
  }(&f.db));
}

TEST(CsdTest, PrimaryRangeScanIsSortedAndComplete) {
  CsdFixture f;
  constexpr int kKeys = 4000;
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("scan")).value();
    auto writer = ks.NewBulkWriter();
    // Insert in reverse order to prove sorting.
    for (int i = kKeys - 1; i >= 0; --i) {
      EXPECT_TRUE((co_await writer.Add(
                       MakeFixedKey(static_cast<std::uint64_t>(i)),
                       "v" + std::to_string(i)))
                      .ok());
    }
    EXPECT_TRUE((co_await writer.Flush()).ok());
    EXPECT_TRUE((co_await ks.Compact()).ok());
    EXPECT_TRUE((co_await ks.WaitCompaction()).ok());

    std::vector<std::pair<std::string, std::string>> out;
    EXPECT_TRUE((co_await ks.Scan(MakeFixedKey(1000), MakeFixedKey(1199), 0,
                                  &out))
                    .ok());
    EXPECT_EQ(out.size(), 200u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].first, MakeFixedKey(1000 + i));
      EXPECT_EQ(out[i].second, "v" + std::to_string(1000 + i));
    }

    // Limit honoured.
    out.clear();
    EXPECT_TRUE(
        (co_await ks.Scan(MakeFixedKey(0), MakeFixedKey(kKeys), 7, &out))
            .ok());
    EXPECT_EQ(out.size(), 7u);
  }(&f.db));
}

TEST(CsdTest, SecondaryIndexQueryByEnergy) {
  CsdFixture f;
  constexpr int kKeys = 3000;
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("vpic")).value();
    auto writer = ks.NewBulkWriter();
    // Particle i has energy i * 0.01.
    for (int i = 0; i < kKeys; ++i) {
      EXPECT_TRUE(
          (co_await writer.Add(MakeFixedKey(static_cast<std::uint64_t>(i)),
                               CsdFixture::EnergyValue(
                                   static_cast<float>(i) * 0.01f)))
              .ok());
    }
    EXPECT_TRUE((co_await writer.Flush()).ok());
    EXPECT_TRUE((co_await ks.Compact()).ok());
    EXPECT_TRUE((co_await ks.WaitCompaction()).ok());
    EXPECT_TRUE((co_await ks.CreateSecondaryIndexF32("energy", 28)).ok());

    // energy in [20.00, 20.49] -> particles 2000..2049.
    std::vector<std::pair<std::string, std::string>> hits;
    EXPECT_TRUE((co_await ks.QuerySecondaryRangeF32("energy", 20.0f,
                                                    20.495f, 0, &hits))
                    .ok());
    EXPECT_EQ(hits.size(), 50u);
    std::vector<std::uint64_t> ids;
    for (const auto& [pkey, value] : hits) {
      ids.push_back(FixedKeyId(pkey));
      // The full particle payload comes back with the match.
      float energy;
      std::memcpy(&energy, value.data() + 28, 4);
      EXPECT_GE(energy, 20.0f);
      EXPECT_LE(energy, 20.495f);
    }
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids.front(), 2000u);
    EXPECT_EQ(ids.back(), 2049u);

    // Unknown index name.
    hits.clear();
    auto s = co_await ks.QuerySecondaryRangeF32("nope", 0, 1, 0, &hits);
    EXPECT_EQ(s.code(), StatusCode::kNotFound);
  }(&f.db));
}

TEST(CsdTest, SecondaryIndexRequiresCompaction) {
  CsdFixture f;
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("early")).value();
    EXPECT_TRUE((co_await ks.Put(MakeFixedKey(1),
                                 CsdFixture::EnergyValue(1.0f)))
                    .ok());
    auto s = co_await ks.CreateSecondaryIndexF32("energy", 28);
    EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  }(&f.db));
}

TEST(CsdTest, DropReclaimsZones) {
  CsdFixture f;
  testutil::RunSim(f.sim, [](client::Client* db, Device* dev)
                              -> sim::Task<void> {
    const std::size_t free_at_start = dev->zones().free_zones();
    auto ks = (co_await db->CreateKeyspace("temp")).value();
    auto writer = ks.NewBulkWriter();
    for (int i = 0; i < 3000; ++i) {
      EXPECT_TRUE((co_await writer.Add(
                       MakeFixedKey(static_cast<std::uint64_t>(i)),
                       std::string(32, 'd')))
                      .ok());
    }
    EXPECT_TRUE((co_await writer.Flush()).ok());
    EXPECT_TRUE((co_await ks.Compact()).ok());
    EXPECT_TRUE((co_await ks.WaitCompaction()).ok());
    EXPECT_LT(dev->zones().free_zones(), free_at_start);
    EXPECT_TRUE((co_await db->DropKeyspace("temp")).ok());
    EXPECT_EQ(dev->zones().free_zones(), free_at_start);
  }(&f.db, &f.dev));
}

TEST(CsdTest, DeleteDuringCompactionIsDeferred) {
  CsdFixture f;
  testutil::RunSim(f.sim, [](client::Client* db, Device* dev,
                             sim::Simulation* s) -> sim::Task<void> {
    const std::size_t free_at_start = dev->zones().free_zones();
    auto ks = (co_await db->CreateKeyspace("doomed")).value();
    for (int i = 0; i < 3000; ++i) {
      EXPECT_TRUE((co_await ks.Put(
                       MakeFixedKey(static_cast<std::uint64_t>(i)), "v"))
                      .ok());
    }
    EXPECT_TRUE((co_await ks.Compact()).ok());
    // Drop while COMPACTING: accepted but deferred.
    EXPECT_TRUE((co_await db->DropKeyspace("doomed")).ok());
    EXPECT_TRUE((co_await ks.WaitCompaction()).ok());
    // The deferred delete runs asynchronously after compaction; give the
    // device time to finish resetting zones before checking.
    co_await s->Delay(Seconds(1));
    auto gone = co_await db->OpenKeyspace("doomed");
    EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
    EXPECT_EQ(dev->zones().free_zones(), free_at_start);
  }(&f.db, &f.dev, &f.sim));
}

TEST(CsdTest, CompactionRunsAsynchronously) {
  // The command returns long before the compaction finishes: this is the
  // deferred-compaction latency hiding at the heart of the paper.
  CsdFixture f;
  Tick trigger_done = 0;
  Tick compaction_done = 0;
  testutil::RunSim(f.sim, [](client::Client* db, sim::Simulation* s,
                             Tick* trig, Tick* comp) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("async")).value();
    auto writer = ks.NewBulkWriter();
    for (int i = 0; i < 20000; ++i) {
      EXPECT_TRUE((co_await writer.Add(
                       MakeFixedKey(static_cast<std::uint64_t>(i)),
                       std::string(32, 'a')))
                      .ok());
    }
    EXPECT_TRUE((co_await writer.Flush()).ok());
    EXPECT_TRUE((co_await ks.Compact()).ok());
    *trig = s->Now();
    EXPECT_TRUE((co_await ks.WaitCompaction()).ok());
    *comp = s->Now();
  }(&f.db, &f.sim, &trigger_done, &compaction_done));
  // Compaction took real (virtual) time after the trigger returned.
  EXPECT_GT(compaction_done, trigger_done + Milliseconds(1));
}

TEST(CsdTest, MetadataSurvivesPowerCycle) {
  // Build a keyspace, then attach a new Device "head" to the same
  // simulated SSD and recover the keyspace table from the metadata zone.
  sim::Simulation sim;
  nvme::QueueSet qp(&sim, nvme::PcieConfig{});
  auto dev = std::make_unique<Device>(&sim, SmallDevice(), &qp);
  dev->Start();
  sim::CpuPool host(&sim, "host", 8);
  client::Client db(&qp, &host, hostenv::CostModel::Host());

  testutil::RunSim(sim, [](client::Client* c) -> sim::Task<void> {
    auto ks = (co_await c->CreateKeyspace("durable")).value();
    for (int i = 0; i < 1000; ++i) {
      EXPECT_TRUE((co_await ks.Put(
                       MakeFixedKey(static_cast<std::uint64_t>(i)), "v"))
                      .ok());
    }
    EXPECT_TRUE((co_await ks.Compact()).ok());
    EXPECT_TRUE((co_await ks.WaitCompaction()).ok());
  }(&db));

  // "Reboot": recover a fresh keyspace manager from the same SSD.
  KeyspaceManager recovered(&dev->ssd());
  auto count = testutil::RunSim(sim, recovered.Recover());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  Keyspace* ks = recovered.Find("durable").value();
  EXPECT_EQ(ks->state, KeyspaceState::kCompacted);
  EXPECT_EQ(ks->num_kvs, 1000u);
  EXPECT_FALSE(ks->pidx_sketch.empty());
}

TEST(CsdTest, ConcurrentWritersOnSeparateKeyspaces) {
  CsdFixture f;
  sim::WaitGroup wg(&f.sim);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1500;
  wg.Add(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    f.sim.Spawn([](client::Client* db, sim::WaitGroup* group, int thread)
                    -> sim::Task<void> {
      auto ks =
          (co_await db->CreateKeyspace("ks" + std::to_string(thread)))
              .value();
      auto writer = ks.NewBulkWriter();
      for (int i = 0; i < kPerThread; ++i) {
        EXPECT_TRUE(
            (co_await writer.Add(
                 MakeFixedKey(static_cast<std::uint64_t>(i)),
                 "t" + std::to_string(thread) + "-" + std::to_string(i)))
                .ok());
      }
      EXPECT_TRUE((co_await writer.Flush()).ok());
      EXPECT_TRUE((co_await ks.Compact()).ok());
      EXPECT_TRUE((co_await ks.WaitCompaction()).ok());
      // Keys are reused across keyspaces without conflict.
      auto v = co_await ks.Get(MakeFixedKey(7));
      EXPECT_TRUE(v.ok());
      if (v.ok()) {
        EXPECT_EQ(*v, "t" + std::to_string(thread) + "-7");
      }
      group->Done();
    }(&f.db, &wg, t));
  }
  f.sim.Run();
  EXPECT_EQ(wg.count(), 0);
  EXPECT_EQ(f.dev.compactions_done(), static_cast<std::uint64_t>(kThreads));
}

}  // namespace
}  // namespace kvcsd::device
