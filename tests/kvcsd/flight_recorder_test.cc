// Flight recorder (DESIGN.md §14): a bounded ring of recent command
// summaries that dumps itself — with a utilization snapshot — when an SLO
// rule trips or the fault injector cuts power, and that survives
// Device::Restart so the post-crash dump still shows the pre-crash tail.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "../testutil.h"
#include "client/client.h"
#include "common/keys.h"
#include "kvcsd/device.h"
#include "kvcsd/flight_recorder.h"
#include "sim/fault.h"

namespace kvcsd::device {
namespace {

DeviceConfig SmallDevice() {
  DeviceConfig c;
  c.zns.zone_size = KiB(256);
  c.zns.num_zones = 64;
  c.zns.nand.channels = 8;
  c.dram_bytes = KiB(512);
  c.write_buffer_bytes = KiB(2);
  c.output_batch_bytes = KiB(16);
  return c;
}

FlightRecorder::Entry MakeEntry(std::uint64_t cmd_id) {
  FlightRecorder::Entry e;
  e.cmd_id = cmd_id;
  e.opcode = nvme::Opcode::kKvStore;
  e.tick = 1000 * cmd_id;
  e.exec_ns = 500;
  return e;
}

TEST(FlightRecorderTest, RingSaturatesAndKeepsNewestOldestFirst) {
  FlightRecorderConfig cfg;
  cfg.capacity = 4;
  FlightRecorder rec(cfg);
  EXPECT_EQ(rec.size(), 0u);
  for (std::uint64_t i = 1; i <= 10; ++i) rec.Record(MakeEntry(i));
  EXPECT_EQ(rec.size(), 4u);
  const auto entries = rec.Entries();
  ASSERT_EQ(entries.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(entries[i].cmd_id, 7 + i);  // oldest first: 7, 8, 9, 10
  }
}

TEST(FlightRecorderTest, BreachRulesMatchConfig) {
  FlightRecorderConfig cfg;
  cfg.slo_exec_ns = 1000;
  cfg.dump_on_busy = true;
  FlightRecorder rec(cfg);

  FlightRecorder::Entry fast = MakeEntry(1);
  fast.exec_ns = 999;
  EXPECT_EQ(rec.BreachReason(fast), nullptr);

  FlightRecorder::Entry slow = MakeEntry(2);
  slow.exec_ns = 1001;
  ASSERT_NE(rec.BreachReason(slow), nullptr);
  EXPECT_STREQ(rec.BreachReason(slow), "slo_exec");

  FlightRecorder::Entry busy = MakeEntry(3);
  busy.status = StatusCode::kBusy;
  ASSERT_NE(rec.BreachReason(busy), nullptr);
  EXPECT_STREQ(rec.BreachReason(busy), "busy");

  // No rules configured: nothing trips, not even errors.
  FlightRecorder rec_off(FlightRecorderConfig{});
  EXPECT_EQ(rec_off.BreachReason(slow), nullptr);
  EXPECT_EQ(rec_off.BreachReason(busy), nullptr);
}

TEST(FlightRecorderTest, DumpCarriesSnapshotAndEntries) {
  FlightRecorderConfig cfg;
  cfg.capacity = 8;
  FlightRecorder rec(cfg);
  rec.set_snapshot_provider(
      [](std::vector<std::pair<std::string, std::uint64_t>>* out) {
        out->emplace_back("util.dispatch.dispatch", 987);
      });
  rec.Record(MakeEntry(41));
  rec.Record(MakeEntry(42));
  const std::string dump = rec.Dump("slo_exec", 123456, "");
  EXPECT_EQ(rec.trips(), 1u);
  EXPECT_EQ(rec.last_dump(), dump);
  EXPECT_NE(dump.find("\"reason\": \"slo_exec\""), std::string::npos);
  EXPECT_NE(dump.find("util.dispatch.dispatch"), std::string::npos);
  EXPECT_NE(dump.find("987"), std::string::npos);
  EXPECT_NE(dump.find("\"cmd_id\": 41"), std::string::npos);
  EXPECT_NE(dump.find("\"cmd_id\": 42"), std::string::npos);
}

// Same restartable fixture shape as observability_test.cc.
struct Fixture {
  sim::Simulation sim;
  sim::FaultInjector faults{11};
  DeviceConfig cfg;
  std::vector<std::unique_ptr<nvme::QueueSet>> qps;
  std::vector<std::unique_ptr<Device>> devs;
  sim::CpuPool host{&sim, "host", 8};
  std::unique_ptr<client::Client> db;

  explicit Fixture(FlightRecorderConfig flight) : cfg(SmallDevice()) {
    cfg.zns.faults = &faults;
    cfg.flight = flight;
    qps.push_back(std::make_unique<nvme::QueueSet>(&sim, nvme::PcieConfig{}));
    devs.push_back(std::make_unique<Device>(&sim, cfg, qps.back().get()));
    devs.back()->Start();
    db = std::make_unique<client::Client>(qps.back().get(), &host,
                                          hostenv::CostModel::Host());
  }

  Device* dev() { return devs.back().get(); }

  void Restart() {
    qps.push_back(std::make_unique<nvme::QueueSet>(&sim, nvme::PcieConfig{}));
    devs.push_back(
        Device::Restart(&sim, cfg, qps.back().get(), *devs.back()));
    devs.back()->Start();
    db = std::make_unique<client::Client>(qps.back().get(), &host,
                                          hostenv::CostModel::Host());
  }
};

sim::Task<void> PutSome(client::Client* db, const std::string& name,
                        std::uint64_t count) {
  auto ks = co_await db->CreateKeyspace(name);
  KVCSD_CO_ASSERT_OK(ks);
  for (std::uint64_t i = 0; i < count; ++i) {
    KVCSD_CO_ASSERT_OK(
        co_await ks->Put(MakeFixedKey(i), "v" + std::to_string(i)));
  }
  KVCSD_CO_ASSERT_OK(co_await ks->Sync());
}

// Best-effort writes for crashing runs: statuses are ignored because the
// power cut fails everything in flight.
sim::Task<void> PutIgnoringErrors(client::Client* db, const std::string& name,
                                  std::uint64_t count) {
  auto ks = co_await db->CreateKeyspace(name);
  if (!ks.ok()) co_return;
  for (std::uint64_t i = 0; i < count; ++i) {
    (void)co_await ks->Put(MakeFixedKey(i), "v" + std::to_string(i));
  }
  (void)co_await ks->Sync();
}

TEST(FlightRecorderDeviceTest, SloBreachTripsDumpAndCounter) {
  FlightRecorderConfig flight;
  flight.slo_exec_ns = 1;  // every command breaches
  // A dump path makes every trip also land on disk (<path>.<trip>.json) —
  // the files CI uploads as artifacts when a job fails.
  flight.dump_path = "flight_recorder_test.flight";
  Fixture f(flight);
  testutil::RunSim(f.sim, PutSome(f.db.get(), "slo", 20));

  EXPECT_GT(f.dev()->flight().trips(), 0u);
  EXPECT_EQ(f.sim.stats().counter_value("device.flight.trips_total"),
            f.dev()->flight().trips());
  const std::string& dump = f.dev()->flight().last_dump();
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("\"reason\": \"slo_exec\""), std::string::npos);
  EXPECT_NE(dump.find("\"utilization\""), std::string::npos);
  EXPECT_NE(dump.find("util.dispatch.dispatch"), std::string::npos);

  std::ifstream on_disk("flight_recorder_test.flight." +
                        std::to_string(f.dev()->flight().trips()) + ".json");
  ASSERT_TRUE(on_disk.good());
  std::string file_dump((std::istreambuf_iterator<char>(on_disk)),
                        std::istreambuf_iterator<char>());
  EXPECT_EQ(file_dump, dump);
}

TEST(FlightRecorderDeviceTest, SweptCrashPointDumpsAndRingSurvivesRestart) {
  // Warm up once without faults armed to learn how many crash points the
  // workload hits, then re-run with the cut armed mid-sweep.
  std::uint64_t hits = 0;
  {
    Fixture warm((FlightRecorderConfig()));
    testutil::RunSim(warm.sim, PutSome(warm.db.get(), "cp", 40));
    hits = warm.faults.hits();
  }
  ASSERT_GT(hits, 0u);

  Fixture f((FlightRecorderConfig()));
  f.faults.ArmCrashAtHit(hits / 2 + 1);
  testutil::RunSim(f.sim, PutIgnoringErrors(f.db.get(), "cp", 40));
  ASSERT_TRUE(f.faults.crashed());
  EXPECT_FALSE(f.faults.crash_point().empty());

  // The crash hook dumped the ring with the crash point attached.
  EXPECT_GE(f.dev()->flight().trips(), 1u);
  const std::string dump = f.dev()->flight().last_dump();
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("\"reason\": \"crash\""), std::string::npos);
  EXPECT_NE(dump.find(f.faults.crash_point()), std::string::npos);

  // The ring is shared with the next incarnation: pre-crash entries stay
  // readable and post-restart commands append after them.
  const std::size_t before = f.dev()->flight().size();
  ASSERT_GT(before, 0u);
  const Tick last_precrash_tick = f.dev()->flight().Entries().back().tick;
  f.Restart();
  testutil::RunSim(f.sim, [](Device* dev) -> sim::Task<void> {
    KVCSD_CO_ASSERT_OK(co_await dev->Recover());
  }(f.dev()));
  testutil::RunSim(f.sim, PutSome(f.db.get(), "cp2", 10));
  EXPECT_GE(f.dev()->flight().size(), before);
  // Sim time is monotonic across the power cycle, so new entries sort
  // after the pre-crash tail.
  EXPECT_GT(f.dev()->flight().Entries().back().tick, last_precrash_tick);
}

}  // namespace
}  // namespace kvcsd::device
