// Tests for the two paper extensions: explicit Sync (fsync, §VI) and the
// fused compaction + secondary-index pass (§V future work).
#include <gtest/gtest.h>

#include <cstring>

#include "../testutil.h"
#include "client/client.h"
#include "common/keys.h"
#include "kvcsd/device.h"

namespace kvcsd::device {
namespace {

DeviceConfig SmallDevice() {
  DeviceConfig c;
  c.zns.zone_size = MiB(1);
  c.zns.num_zones = 256;
  c.zns.nand.channels = 8;
  c.dram_bytes = KiB(512);
  c.write_buffer_bytes = KiB(8);
  return c;
}

struct Fixture {
  sim::Simulation sim;
  nvme::QueueSet qp{&sim, nvme::PcieConfig{}};
  Device dev{&sim, SmallDevice(), &qp};
  sim::CpuPool host{&sim, "host", 8};
  client::Client db{&qp, &host, hostenv::CostModel::Host()};
  Fixture() { dev.Start(); }

  static std::string EnergyValue(float energy) {
    std::string v(28, 'p');
    char buf[4];
    std::memcpy(buf, &energy, 4);
    v.append(buf, 4);
    return v;
  }
};

TEST(SyncTest, PersistsBufferedWrites) {
  Fixture f;
  testutil::RunSim(f.sim, [](client::Client* db, Device* dev)
                              -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("synced")).value();
    // A handful of puts: far below the 8 KiB buffer, so nothing has been
    // flushed to flash yet.
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE((co_await ks.Put(
                       MakeFixedKey(static_cast<std::uint64_t>(i)), "v"))
                      .ok());
    }
    const std::uint64_t before = dev->ssd().total_bytes_written();
    EXPECT_TRUE((co_await ks.Sync()).ok());
    // Sync forced the buffer into the KLOG/VLOG zones.
    EXPECT_GT(dev->ssd().total_bytes_written(), before);
    // Sync on a compacted keyspace is a no-op success.
    EXPECT_TRUE((co_await ks.Compact()).ok());
    EXPECT_TRUE((co_await ks.WaitCompaction()).ok());
    EXPECT_TRUE((co_await ks.Sync()).ok());
  }(&f.db, &f.dev));
}

TEST(FusedIndexTest, CompactWithIndexesBuildsEverythingInOnePass) {
  Fixture f;
  constexpr int kKeys = 3000;
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("fused")).value();
    auto writer = ks.NewBulkWriter();
    for (int i = 0; i < kKeys; ++i) {
      EXPECT_TRUE(
          (co_await writer.Add(MakeFixedKey(static_cast<std::uint64_t>(i)),
                               Fixture::EnergyValue(
                                   static_cast<float>(i) * 0.01f)))
              .ok());
    }
    EXPECT_TRUE((co_await writer.Flush()).ok());

    nvme::SecondaryIndexSpec energy;
    energy.name = "energy";
    energy.value_offset = 28;
    energy.value_length = 4;
    energy.type = nvme::SecondaryKeyType::kF32;
    std::vector<nvme::SecondaryIndexSpec> specs;
    specs.push_back(std::move(energy));
    EXPECT_TRUE((co_await ks.CompactWithIndexes(std::move(specs))).ok());
    EXPECT_TRUE((co_await ks.WaitCompaction()).ok());

    // Primary queries work...
    auto v = co_await ks.Get(MakeFixedKey(1234));
    EXPECT_TRUE(v.ok());

    // ...and the fused index answers secondary queries with no separate
    // build step.
    std::vector<std::pair<std::string, std::string>> hits;
    EXPECT_TRUE((co_await ks.QuerySecondaryRangeF32("energy", 10.0f,
                                                    10.495f, 0, &hits))
                    .ok());
    EXPECT_EQ(hits.size(), 50u);  // ids 1000..1049
  }(&f.db));
}

TEST(FusedIndexTest, FusedAvoidsKeyspaceReRead) {
  // The whole point of the fused pass: building the index separately
  // re-reads every value from flash; fused extraction does not.
  auto run = [](bool fused) {
    Fixture f;
    std::uint64_t reads = 0;
    testutil::RunSim(f.sim, [](client::Client* db, Device* dev, bool fuse,
                               std::uint64_t* out) -> sim::Task<void> {
      auto ks = (co_await db->CreateKeyspace("x")).value();
      auto writer = ks.NewBulkWriter();
      for (int i = 0; i < 5000; ++i) {
        EXPECT_TRUE((co_await writer.Add(
                         MakeFixedKey(static_cast<std::uint64_t>(i)),
                         Fixture::EnergyValue(static_cast<float>(i))))
                        .ok());
      }
      EXPECT_TRUE((co_await writer.Flush()).ok());

      nvme::SecondaryIndexSpec energy;
      energy.name = "energy";
      energy.value_offset = 28;
      energy.value_length = 4;
      energy.type = nvme::SecondaryKeyType::kF32;
      if (fuse) {
        std::vector<nvme::SecondaryIndexSpec> specs;
        specs.push_back(std::move(energy));
        EXPECT_TRUE((co_await ks.CompactWithIndexes(std::move(specs))).ok());
        EXPECT_TRUE((co_await ks.WaitCompaction()).ok());
      } else {
        EXPECT_TRUE((co_await ks.Compact()).ok());
        EXPECT_TRUE((co_await ks.WaitCompaction()).ok());
        EXPECT_TRUE(
            (co_await ks.CreateSecondaryIndex(std::move(energy))).ok());
      }
      *out = dev->ssd().total_bytes_read();
    }(&f.db, &f.dev, fused, &reads));
    return reads;
  };
  const std::uint64_t separate_reads = run(false);
  const std::uint64_t fused_reads = run(true);
  EXPECT_LT(fused_reads, separate_reads);
}

TEST(FusedIndexTest, FusedAndSeparateAgreeOnResults) {
  auto query = [](bool fused) {
    Fixture f;
    std::vector<std::uint64_t> ids;
    testutil::RunSim(f.sim, [](client::Client* db, bool fuse,
                               std::vector<std::uint64_t>* out)
                                -> sim::Task<void> {
      auto ks = (co_await db->CreateKeyspace("x")).value();
      auto writer = ks.NewBulkWriter();
      for (int i = 0; i < 2000; ++i) {
        EXPECT_TRUE((co_await writer.Add(
                         MakeFixedKey(static_cast<std::uint64_t>(i)),
                         Fixture::EnergyValue(
                             static_cast<float>((i * 37) % 500))))
                        .ok());
      }
      EXPECT_TRUE((co_await writer.Flush()).ok());
      nvme::SecondaryIndexSpec energy;
      energy.name = "energy";
      energy.value_offset = 28;
      energy.value_length = 4;
      energy.type = nvme::SecondaryKeyType::kF32;
      if (fuse) {
        std::vector<nvme::SecondaryIndexSpec> specs;
        specs.push_back(std::move(energy));
        EXPECT_TRUE((co_await ks.CompactWithIndexes(std::move(specs))).ok());
        EXPECT_TRUE((co_await ks.WaitCompaction()).ok());
      } else {
        EXPECT_TRUE((co_await ks.Compact()).ok());
        EXPECT_TRUE((co_await ks.WaitCompaction()).ok());
        EXPECT_TRUE(
            (co_await ks.CreateSecondaryIndex(std::move(energy))).ok());
      }
      std::vector<std::pair<std::string, std::string>> hits;
      EXPECT_TRUE((co_await ks.QuerySecondaryRangeF32("energy", 100.0f,
                                                      200.0f, 0, &hits))
                      .ok());
      for (const auto& [pkey, value] : hits) {
        out->push_back(FixedKeyId(pkey));
      }
    }(&f.db, fused, &ids));
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  EXPECT_EQ(query(true), query(false));
}

TEST(SecondaryRangeTest, TiedKeysSpanningManyBlocksAllMatch) {
  // Regression: thousands of IDENTICAL secondary keys span many SIDX
  // blocks, so consecutive sketch pivots are equal. The range query must
  // start at the FIRST such block, not the last (tie-aware lower bound).
  Fixture f;
  constexpr int kKeys = 4000;  // ~30 B/entry -> dozens of 4 KB blocks
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("ties")).value();
    auto writer = ks.NewBulkWriter();
    for (int i = 0; i < kKeys; ++i) {
      // Every particle has the same energy except the first hundred.
      const float energy = i < 100 ? 0.5f : 7.0f;
      EXPECT_TRUE(
          (co_await writer.Add(MakeFixedKey(static_cast<std::uint64_t>(i)),
                               Fixture::EnergyValue(energy)))
              .ok());
    }
    EXPECT_TRUE((co_await writer.Flush()).ok());
    EXPECT_TRUE((co_await ks.Compact()).ok());
    EXPECT_TRUE((co_await ks.WaitCompaction()).ok());
    EXPECT_TRUE((co_await ks.CreateSecondaryIndexF32("energy", 28)).ok());

    std::vector<std::pair<std::string, std::string>> hits;
    EXPECT_TRUE((co_await ks.QuerySecondaryRangeF32("energy", 7.0f, 7.0f, 0,
                                                    &hits))
                    .ok());
    EXPECT_EQ(hits.size(), static_cast<std::size_t>(kKeys - 100));

    hits.clear();
    EXPECT_TRUE((co_await ks.QuerySecondaryRangeF32("energy", 0.4f, 0.6f, 0,
                                                    &hits))
                    .ok());
    EXPECT_EQ(hits.size(), 100u);
  }(&f.db));
}

}  // namespace
}  // namespace kvcsd::device
