#include "kvcsd/keyspace_manager.h"

#include <gtest/gtest.h>

#include "../testutil.h"

namespace kvcsd::device {
namespace {

storage::ZnsConfig SmallZns() {
  storage::ZnsConfig c;
  c.zone_size = KiB(64);
  c.num_zones = 8;
  return c;
}

TEST(KeyspaceManagerTest, CreateFindErase) {
  sim::Simulation sim;
  storage::ZnsSsd ssd(&sim, SmallZns());
  KeyspaceManager km(&ssd);

  auto ks = km.Create("particles");
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ((*ks)->state, KeyspaceState::kEmpty);
  EXPECT_EQ((*ks)->name, "particles");
  EXPECT_EQ(km.Create("particles").status().code(),
            StatusCode::kAlreadyExists);

  auto found = km.Find("particles");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *ks);
  EXPECT_TRUE(km.FindById((*ks)->id).ok());
  EXPECT_EQ(km.Find("nope").status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(km.Erase((*ks)->id).ok());
  EXPECT_EQ(km.Find("particles").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(km.size(), 0u);
}

TEST(KeyspaceManagerTest, IdsAreUniqueAcrossNames) {
  sim::Simulation sim;
  storage::ZnsSsd ssd(&sim, SmallZns());
  KeyspaceManager km(&ssd);
  auto a = km.Create("a").value();
  auto b = km.Create("b").value();
  EXPECT_NE(a->id, b->id);
  // Keys may repeat across keyspaces without conflict: the manager only
  // namespaces by keyspace, which is the paper's point.
}

TEST(KeyspaceManagerTest, PersistAndRecoverFullState) {
  sim::Simulation sim;
  storage::ZnsSsd ssd(&sim, SmallZns());
  {
    KeyspaceManager km(&ssd);
    Keyspace* ks = km.Create("sim_dump").value();
    ks->state = KeyspaceState::kCompacted;
    ks->num_kvs = 12345;
    ks->min_key = "aaa";
    ks->max_key = "zzz";
    ks->pidx_clusters = {7, 9};
    ks->sorted_value_clusters = {11};
    ks->pidx_sketch.push_back(SketchEntry{"aaa", 4096, 4096});
    ks->pidx_sketch.push_back(SketchEntry{"mmm", 8192, 4096});
    SecondaryIndex sidx;
    sidx.spec.name = "energy";
    sidx.spec.value_offset = 28;
    sidx.spec.value_length = 4;
    sidx.spec.type = nvme::SecondaryKeyType::kF32;
    sidx.sidx_clusters = {13};
    sidx.sketch.push_back(SketchEntry{"\x80\x00\x00\x01", 12288, 4096});
    sidx.entries = 12345;
    ks->secondary_indexes["energy"] = sidx;
    ks->pending_delete = true;  // deferred-drop tombstone round-trips
    ASSERT_TRUE(testutil::RunSim(sim, km.Persist()).ok());
  }
  // Power cycle: a fresh manager over the same SSD recovers everything.
  KeyspaceManager recovered(&ssd);
  auto count = testutil::RunSim(sim, recovered.Recover());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  Keyspace* ks = recovered.Find("sim_dump").value();
  EXPECT_EQ(ks->state, KeyspaceState::kCompacted);
  EXPECT_EQ(ks->num_kvs, 12345u);
  EXPECT_EQ(ks->min_key, "aaa");
  EXPECT_EQ(ks->max_key, "zzz");
  EXPECT_TRUE(ks->pending_delete);
  EXPECT_EQ(ks->pidx_clusters, (std::vector<ClusterId>{7, 9}));
  ASSERT_EQ(ks->pidx_sketch.size(), 2u);
  EXPECT_EQ(ks->pidx_sketch[1].pivot, "mmm");
  ASSERT_TRUE(ks->secondary_indexes.contains("energy"));
  const SecondaryIndex& sidx = ks->secondary_indexes.at("energy");
  EXPECT_EQ(sidx.spec.value_offset, 28u);
  EXPECT_EQ(sidx.spec.type, nvme::SecondaryKeyType::kF32);
  EXPECT_EQ(sidx.entries, 12345u);
}

TEST(KeyspaceManagerTest, LatestSnapshotWins) {
  sim::Simulation sim;
  storage::ZnsSsd ssd(&sim, SmallZns());
  KeyspaceManager km(&ssd);
  (void)km.Create("v1").value();
  ASSERT_TRUE(testutil::RunSim(sim, km.Persist()).ok());
  (void)km.Create("v2").value();
  ASSERT_TRUE(testutil::RunSim(sim, km.Persist()).ok());

  KeyspaceManager recovered(&ssd);
  auto count = testutil::RunSim(sim, recovered.Recover());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);
  EXPECT_TRUE(recovered.Find("v1").ok());
  EXPECT_TRUE(recovered.Find("v2").ok());
}

TEST(KeyspaceManagerTest, MetadataZoneRollsOverWhenFull) {
  sim::Simulation sim;
  storage::ZnsSsd ssd(&sim, SmallZns());
  KeyspaceManager km(&ssd);
  // Big names make snapshots chunky; persist until well past one 64 KiB
  // zone's worth of snapshots.
  for (int i = 0; i < 64; ++i) {
    (void)km.Create("keyspace-with-a-rather-long-name-" +
                    std::to_string(i))
        .value();
    ASSERT_TRUE(testutil::RunSim(sim, km.Persist()).ok()) << i;
  }
  KeyspaceManager recovered(&ssd);
  auto count = testutil::RunSim(sim, recovered.Recover());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 64u);
}

TEST(KeyspaceManagerTest, RecoverOnBlankDeviceIsEmpty) {
  sim::Simulation sim;
  storage::ZnsSsd ssd(&sim, SmallZns());
  KeyspaceManager km(&ssd);
  auto count = testutil::RunSim(sim, km.Recover());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST(KeyspaceManagerTest, IdCounterSurvivesRecovery) {
  sim::Simulation sim;
  storage::ZnsSsd ssd(&sim, SmallZns());
  std::uint64_t first_id;
  {
    KeyspaceManager km(&ssd);
    first_id = km.Create("one").value()->id;
    ASSERT_TRUE(testutil::RunSim(sim, km.Persist()).ok());
  }
  KeyspaceManager recovered(&ssd);
  ASSERT_TRUE(testutil::RunSim(sim, recovered.Recover()).ok());
  auto next = recovered.Create("two").value();
  EXPECT_GT(next->id, first_id);
}

}  // namespace
}  // namespace kvcsd::device
