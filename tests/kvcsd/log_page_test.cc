// In-band telemetry log pages (DESIGN.md §14): a kGetLogPage pull over
// the NVMe wire must decode to exactly what the device's stats registry
// held at the tick the page was assembled — equal counters, bit-identical
// histogram digests — and the health page must carry the windowed
// utilization gauges.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "../testutil.h"
#include "client/client.h"
#include "common/keys.h"
#include "kvcsd/device.h"
#include "nvme/log_page.h"
#include "sim/stats.h"

namespace kvcsd::device {
namespace {

DeviceConfig SmallDevice() {
  DeviceConfig c;
  c.zns.zone_size = MiB(1);
  c.zns.num_zones = 256;
  c.zns.nand.channels = 8;
  c.dram_bytes = KiB(512);
  c.write_buffer_bytes = KiB(8);
  return c;
}

struct Fixture {
  sim::Simulation sim;
  DeviceConfig cfg = SmallDevice();
  nvme::QueueSet qp{&sim, nvme::PcieConfig{}};
  Device dev{&sim, cfg, &qp};
  sim::CpuPool host{&sim, "host", 8};
  client::Client db{&qp, &host, hostenv::CostModel::Host()};

  Fixture() { dev.Start(); }
};

sim::Task<void> MixedWorkload(client::Client* db, std::uint64_t count) {
  auto ks = co_await db->CreateKeyspace("lp");
  KVCSD_CO_ASSERT_OK(ks);
  for (std::uint64_t i = 0; i < count; ++i) {
    KVCSD_CO_ASSERT_OK(
        co_await ks->Put(MakeFixedKey(i), "v" + std::to_string(i)));
  }
  KVCSD_CO_ASSERT_OK(co_await ks->Sync());
  KVCSD_CO_ASSERT_OK(co_await ks->Compact());
  KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
  for (std::uint64_t i = 0; i < count; i += 7) {
    auto got = co_await ks->Get(MakeFixedKey(i));
    KVCSD_CO_ASSERT_OK(got);
  }
}

// Bit-level equality for the doubles in a digest: the codec round-trips
// them through bit_cast, so "close" is not good enough.
void ExpectBitIdentical(const sim::HistogramSummary& want,
                        const sim::HistogramSummary& got,
                        const std::string& name) {
  EXPECT_EQ(want.count, got.count) << name;
  EXPECT_EQ(want.sum, got.sum) << name;
  EXPECT_EQ(want.min, got.min) << name;
  EXPECT_EQ(want.max, got.max) << name;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(want.mean),
            std::bit_cast<std::uint64_t>(got.mean))
      << name;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(want.p50),
            std::bit_cast<std::uint64_t>(got.p50))
      << name;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(want.p95),
            std::bit_cast<std::uint64_t>(got.p95))
      << name;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(want.p99),
            std::bit_cast<std::uint64_t>(got.p99))
      << name;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(want.p999),
            std::bit_cast<std::uint64_t>(got.p999))
      << name;
}

TEST(LogPageTest, StatsPagePullMatchesSameTickSnapshot) {
  Fixture f;
  testutil::RunSim(f.sim, MixedWorkload(&f.db, 200));

  // The sim is quiesced (all commands and background work drained), so
  // the registry is frozen until the pull itself runs. The page contains
  // the device.* registry minus device.stage.* histograms, which the pull
  // command mutates mid-flight; the pull's own device.cmd.get_log_page
  // increment lands after the page is assembled, so this pre-pull
  // snapshot is the page's exact expected content.
  std::vector<std::pair<std::string, std::uint64_t>> want_counters;
  for (const auto& [name, c] : f.sim.stats().counters()) {
    if (name.rfind("device.", 0) == 0) {
      want_counters.emplace_back(name, c.value());
    }
  }
  std::vector<std::pair<std::string, sim::HistogramSummary>> want_hists;
  for (const auto& [name, h] : f.sim.stats().histograms()) {
    if (name.rfind("device.", 0) == 0 &&
        name.rfind("device.stage.", 0) != 0) {
      want_hists.emplace_back(name, h.Summary());
    }
  }
  ASSERT_FALSE(want_counters.empty());
  ASSERT_FALSE(want_hists.empty());

  nvme::StatsPage page;
  testutil::RunSim(
      f.sim,
      [](client::Client* db, nvme::StatsPage* out) -> sim::Task<void> {
        auto got = co_await db->GetStats();
        KVCSD_CO_ASSERT_OK(got);
        *out = *std::move(got);
      }(&f.db, &page));

  EXPECT_EQ(page.version, nvme::kLogPageVersion);
  EXPECT_GT(page.tick, 0u);
  ASSERT_EQ(page.counters.size(), want_counters.size());
  for (std::size_t i = 0; i < want_counters.size(); ++i) {
    EXPECT_EQ(page.counters[i].first, want_counters[i].first);
    EXPECT_EQ(page.counters[i].second, want_counters[i].second)
        << want_counters[i].first;
  }
  ASSERT_EQ(page.histograms.size(), want_hists.size());
  for (std::size_t i = 0; i < want_hists.size(); ++i) {
    EXPECT_EQ(page.histograms[i].first, want_hists[i].first);
    ExpectBitIdentical(want_hists[i].second, page.histograms[i].second,
                       want_hists[i].first);
  }
}

TEST(LogPageTest, HealthPageCarriesUtilizationAndDeviceGauges) {
  Fixture f;
  testutil::RunSim(f.sim, MixedWorkload(&f.db, 100));

  nvme::HealthPage page;
  testutil::RunSim(
      f.sim,
      [](client::Client* db, nvme::HealthPage* out) -> sim::Task<void> {
        auto got = co_await db->GetHealth();
        KVCSD_CO_ASSERT_OK(got);
        *out = *std::move(got);
      }(&f.db, &page));

  EXPECT_EQ(page.version, nvme::kLogPageVersion);
  EXPECT_GT(page.tick, 0u);
  ASSERT_FALSE(page.gauges.empty());
  // The pull itself is the only in-flight command at assembly time.
  EXPECT_EQ(page.Gauge("device.inflight_cmds"), 1u);
  // Windowed utilization attribution: every metered resource publishes a
  // capacity gauge (capacity x 1000) alongside its per-class loads.
  EXPECT_EQ(page.Gauge("util.dispatch.capacity"), 1000u);
  EXPECT_GT(page.Gauge("util.soc.capacity"), 0u);
  EXPECT_GT(page.Gauge("util.zns.capacity"), 0u);
  EXPECT_EQ(page.Gauge("util.pcie.h2d.capacity"), 1000u);
  EXPECT_EQ(page.Gauge("util.pcie.d2h.capacity"), 1000u);
  // ZNS role budgets from the zone manager survive the round trip.
  bool has_free_zones = false;
  for (const auto& [name, value] : page.gauges) {
    if (name.find("free_zones") != std::string::npos) has_free_zones = true;
  }
  EXPECT_TRUE(has_free_zones);
}

TEST(LogPageTest, AsyncPullsDecodeLikeSyncOnes) {
  Fixture f;
  testutil::RunSim(f.sim, MixedWorkload(&f.db, 50));
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto hf = co_await db->GetHealthAsync();
    auto sf = co_await db->GetStatsAsync();
    auto health = co_await hf.Await();
    KVCSD_CO_ASSERT_OK(health);
    KVCSD_CO_ASSERT(!health->gauges.empty());
    auto stats = co_await sf.Await();
    KVCSD_CO_ASSERT_OK(stats);
    KVCSD_CO_ASSERT(!stats->counters.empty());
    KVCSD_CO_ASSERT(stats->Counter("device.cmd.kv_store") > 0);
  }(&f.db));
}

TEST(LogPageTest, DecoderRejectsTruncationAndWrongPageId) {
  nvme::HealthPage health;
  health.tick = 42;
  health.gauges = {{"util.soc.host_write", 137}, {"device.inflight_cmds", 1}};
  const std::string enc = nvme::EncodeHealthPage(health);

  // Page-id mismatch: a health payload is not a stats page.
  nvme::StatsPage stats;
  EXPECT_FALSE(nvme::DecodeStatsPage(enc, &stats));

  // Every strict prefix is rejected; the full payload round-trips.
  nvme::HealthPage back;
  for (std::size_t cut = 0; cut < enc.size(); ++cut) {
    EXPECT_FALSE(nvme::DecodeHealthPage(enc.substr(0, cut), &back))
        << "cut=" << cut;
  }
  ASSERT_TRUE(nvme::DecodeHealthPage(enc, &back));
  EXPECT_EQ(back.tick, 42u);
  EXPECT_EQ(back.Gauge("util.soc.host_write"), 137u);
  EXPECT_EQ(back.Gauge("absent"), 0u);
}

}  // namespace
}  // namespace kvcsd::device
