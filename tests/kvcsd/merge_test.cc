// Tests for the compactor's k-way merge machinery (kvcsd/merge.h):
// LoserTree selection order (including ties and exhausted leaves), and
// RunMerger streaming spilled runs back from TEMP clusters across segment
// boundaries with double-buffered reads.
#include "kvcsd/merge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "../testutil.h"
#include "common/keys.h"
#include "kvcsd/zone_manager.h"

namespace kvcsd::device {
namespace {

// ---------------------------------------------------------------------
// LoserTree unit tests: pure in-memory k-way merge over int runs. The
// comparator mirrors RunMerger::LeafLess — exhausted leaves sort last,
// ties break toward the lower leaf index.
// ---------------------------------------------------------------------

std::vector<std::pair<int, std::size_t>> DrainTree(
    const std::vector<std::vector<int>>& runs) {
  std::vector<std::size_t> cursor(runs.size(), 0);
  auto less = [&](std::size_t a, std::size_t b) {
    const bool va = cursor[a] < runs[a].size();
    const bool vb = cursor[b] < runs[b].size();
    if (!va || !vb) return va && !vb;
    const int x = runs[a][cursor[a]];
    const int y = runs[b][cursor[b]];
    if (x != y) return x < y;
    return a < b;
  };
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  LoserTree tree;
  tree.Build(runs.size(), less);
  std::vector<std::pair<int, std::size_t>> out;
  for (std::size_t i = 0; i < total; ++i) {
    const std::size_t w = tree.winner();
    EXPECT_LT(w, runs.size());
    EXPECT_LT(cursor[w], runs[w].size()) << "selected an exhausted leaf";
    out.emplace_back(runs[w][cursor[w]], w);
    ++cursor[w];
    tree.Replay(w, less);
  }
  return out;
}

TEST(LoserTreeTest, MergesDisjointRunsInGlobalOrder) {
  // Non-power-of-two k with an empty run in the middle.
  std::vector<std::vector<int>> runs = {
      {0, 5, 10, 15, 20}, {1, 6, 11, 16}, {}, {2, 7, 12}, {3, 4, 8, 9, 13, 14}};
  std::vector<int> all;
  for (const auto& r : runs) all.insert(all.end(), r.begin(), r.end());
  std::sort(all.begin(), all.end());
  auto popped = DrainTree(runs);
  ASSERT_EQ(popped.size(), all.size());
  for (std::size_t i = 0; i < popped.size(); ++i) {
    EXPECT_EQ(popped[i].first, all[i]);
  }
}

TEST(LoserTreeTest, TiesBreakTowardLowerLeafIndex) {
  // Every run holds the same values; each pop of a given value must come
  // from the lowest-indexed run still holding it.
  std::vector<std::vector<int>> runs = {{1, 2, 2}, {1, 2}, {1, 1, 2}};
  auto popped = DrainTree(runs);
  ASSERT_EQ(popped.size(), 8u);
  std::vector<std::pair<int, std::size_t>> expected = {
      {1, 0}, {1, 1}, {1, 2}, {1, 2}, {2, 0}, {2, 0}, {2, 1}, {2, 2}};
  EXPECT_EQ(popped, expected);
}

TEST(LoserTreeTest, StressAgainstReferenceSort) {
  // Deterministic pseudo-random runs; merged output must equal sorting
  // the concatenation.
  std::uint64_t lcg = 12345;
  auto next = [&lcg]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<int>((lcg >> 33) % 1000);
  };
  std::vector<std::vector<int>> runs(7);
  std::vector<int> all;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const std::size_t n = (r * 37 + 11) % 50;
    for (std::size_t i = 0; i < n; ++i) runs[r].push_back(next());
    std::sort(runs[r].begin(), runs[r].end());
    all.insert(all.end(), runs[r].begin(), runs[r].end());
  }
  std::sort(all.begin(), all.end());
  auto popped = DrainTree(runs);
  ASSERT_EQ(popped.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(popped[i].first, all[i]);
  }
}

TEST(LoserTreeTest, DegenerateSizes) {
  LoserTree empty;
  empty.Build(0, [](std::size_t, std::size_t) { return false; });
  EXPECT_EQ(empty.winner(), LoserTree::kNone);

  LoserTree one;
  one.Build(1, [](std::size_t, std::size_t) { return false; });
  EXPECT_EQ(one.winner(), 0u);
}

// ---------------------------------------------------------------------
// RunMerger integration: spill real runs into TEMP zone clusters, then
// merge them back through the double-buffered readers.
// ---------------------------------------------------------------------

struct MergeFixture {
  sim::Simulation sim;
  storage::ZnsSsd ssd{&sim, MakeConfig()};
  ZoneManager zm{&ssd, ZoneManagerConfig{}};

  static storage::ZnsConfig MakeConfig() {
    storage::ZnsConfig c;
    c.zone_size = KiB(64);
    c.num_zones = 64;
    c.nand.channels = 8;
    return c;
  }
};

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

// Writes `entries` into a fresh TEMP cluster, `per_segment` whole entries
// per flash segment (mirroring the compactor's invariant that segments
// never split an entry).
sim::Task<Status> SpillKlogRun(MergeFixture* f,
                               const std::vector<KlogEntry>& entries,
                               std::size_t per_segment, SpilledRun* out) {
  auto cluster = f->zm.AllocateCluster(ZoneType::kTemp);
  KVCSD_CO_RETURN_IF_ERROR(cluster.status());
  std::string chunk;
  std::size_t in_chunk = 0;
  for (const auto& e : entries) {
    wire::AppendKlogEntry(&chunk, Slice(e.key), e.value_addr, e.value_len,
                          e.seq, e.tombstone);
    ++in_chunk;
    ++out->entries;
    if (in_chunk == per_segment) {
      auto addr = co_await f->zm.Append(*cluster, AsBytes(chunk));
      KVCSD_CO_RETURN_IF_ERROR(addr.status());
      out->segments.emplace_back(*addr,
                                 static_cast<std::uint32_t>(chunk.size()));
      chunk.clear();
      in_chunk = 0;
    }
  }
  if (!chunk.empty()) {
    auto addr = co_await f->zm.Append(*cluster, AsBytes(chunk));
    KVCSD_CO_RETURN_IF_ERROR(addr.status());
    out->segments.emplace_back(*addr,
                               static_cast<std::uint32_t>(chunk.size()));
  }
  co_return Status::Ok();
}

sim::Task<Status> SpillSidxRun(MergeFixture* f,
                               const std::vector<SidxTuple>& entries,
                               std::size_t per_segment, SpilledRun* out) {
  auto cluster = f->zm.AllocateCluster(ZoneType::kTemp);
  KVCSD_CO_RETURN_IF_ERROR(cluster.status());
  std::string chunk;
  std::size_t in_chunk = 0;
  for (const auto& e : entries) {
    wire::AppendSidxEntry(&chunk, Slice(e.skey), Slice(e.pkey), e.vaddr,
                          e.vlen);
    ++in_chunk;
    ++out->entries;
    if (in_chunk == per_segment) {
      auto addr = co_await f->zm.Append(*cluster, AsBytes(chunk));
      KVCSD_CO_RETURN_IF_ERROR(addr.status());
      out->segments.emplace_back(*addr,
                                 static_cast<std::uint32_t>(chunk.size()));
      chunk.clear();
      in_chunk = 0;
    }
  }
  if (!chunk.empty()) {
    auto addr = co_await f->zm.Append(*cluster, AsBytes(chunk));
    KVCSD_CO_RETURN_IF_ERROR(addr.status());
    out->segments.emplace_back(*addr,
                               static_cast<std::uint32_t>(chunk.size()));
  }
  co_return Status::Ok();
}

TEST(RunMergerTest, MergesStridedRunsAcrossSegmentBoundaries) {
  MergeFixture f;
  testutil::RunSim(f.sim, [](MergeFixture* fx) -> sim::Task<void> {
    // Three strided runs (run r holds ids r, r+3, r+6, ...) plus one
    // empty run. Tiny 4-entry segments force several prefetch swaps per
    // run.
    constexpr std::uint64_t kIds = 60;
    std::vector<SpilledRun> runs(4);
    for (std::uint64_t r = 0; r < 3; ++r) {
      std::vector<KlogEntry> entries;
      for (std::uint64_t id = r; id < kIds; id += 3) {
        KlogEntry e;
        e.key = MakeFixedKey(id);
        e.value_addr = id * 100;
        e.value_len = static_cast<std::uint32_t>(id + 1);
        entries.push_back(std::move(e));
      }
      KVCSD_CO_ASSERT_OK(co_await SpillKlogRun(fx, entries, 4, &runs[r]));
      EXPECT_GT(runs[r].segments.size(), 1u) << "want multiple segments";
    }
    // runs[3] stays empty: zero segments, zero entries.

    RunMerger<KlogMergeTraits> merger(&fx->sim, &fx->ssd);
    std::uint64_t bytes_read = 0;
    KVCSD_CO_ASSERT_OK(co_await merger.Init(runs, &bytes_read));
    EXPECT_EQ(merger.fan_in(), 4u);

    std::uint64_t popped = 0;
    while (!merger.Empty()) {
      KlogEntry e;
      KVCSD_CO_ASSERT_OK(co_await merger.Pop(&e));
      EXPECT_EQ(e.key, MakeFixedKey(popped));
      EXPECT_EQ(e.value_addr, popped * 100);
      EXPECT_EQ(e.value_len, popped + 1);
      ++popped;
    }
    EXPECT_EQ(popped, kIds);
    EXPECT_GT(bytes_read, 0u);
  }(&f));
}

TEST(RunMergerTest, SingleRunStreamsInOrder) {
  MergeFixture f;
  testutil::RunSim(f.sim, [](MergeFixture* fx) -> sim::Task<void> {
    std::vector<KlogEntry> entries;
    for (std::uint64_t id = 0; id < 17; ++id) {
      KlogEntry e;
      e.key = MakeFixedKey(id);
      e.value_addr = id;
      e.value_len = 1;
      entries.push_back(std::move(e));
    }
    std::vector<SpilledRun> runs(1);
    KVCSD_CO_ASSERT_OK(co_await SpillKlogRun(fx, entries, 5, &runs[0]));

    RunMerger<KlogMergeTraits> merger(&fx->sim, &fx->ssd);
    KVCSD_CO_ASSERT_OK(co_await merger.Init(runs, nullptr));
    std::uint64_t popped = 0;
    while (!merger.Empty()) {
      KlogEntry e;
      KVCSD_CO_ASSERT_OK(co_await merger.Pop(&e));
      EXPECT_EQ(e.key, MakeFixedKey(popped));
      ++popped;
    }
    EXPECT_EQ(popped, 17u);
  }(&f));
}

TEST(RunMergerTest, AllRunsEmptyIsImmediatelyDrained) {
  MergeFixture f;
  testutil::RunSim(f.sim, [](MergeFixture* fx) -> sim::Task<void> {
    std::vector<SpilledRun> runs(3);
    RunMerger<KlogMergeTraits> merger(&fx->sim, &fx->ssd);
    KVCSD_CO_ASSERT_OK(co_await merger.Init(runs, nullptr));
    EXPECT_TRUE(merger.Empty());
  }(&f));
}

TEST(RunMergerTest, SidxTiesOrderByPkeyThenRunIndex) {
  MergeFixture f;
  testutil::RunSim(f.sim, [](MergeFixture* fx) -> sim::Task<void> {
    // Both runs share secondary key "sk0"; pkeys interleave across the
    // runs, and ("sk0", pkey 2) appears in BOTH runs — the run-0 copy
    // (vaddr marker 0) must come out before the run-1 copy (marker 1000).
    auto tuple = [](const std::string& sk, std::uint64_t pk,
                    std::uint64_t marker) {
      SidxTuple t;
      t.skey = sk;
      t.pkey = MakeFixedKey(pk);
      t.vaddr = marker + pk;
      t.vlen = 4;
      return t;
    };
    std::vector<SidxTuple> run0 = {tuple("sk0", 0, 0), tuple("sk0", 2, 0),
                                   tuple("sk0", 4, 0), tuple("sk1", 0, 0)};
    std::vector<SidxTuple> run1 = {tuple("sk0", 1, 1000),
                                   tuple("sk0", 2, 1000),
                                   tuple("sk0", 3, 1000)};
    std::vector<SpilledRun> runs(2);
    KVCSD_CO_ASSERT_OK(co_await SpillSidxRun(fx, run0, 2, &runs[0]));
    KVCSD_CO_ASSERT_OK(co_await SpillSidxRun(fx, run1, 2, &runs[1]));

    RunMerger<SidxMergeTraits> merger(&fx->sim, &fx->ssd);
    KVCSD_CO_ASSERT_OK(co_await merger.Init(runs, nullptr));
    std::vector<SidxTuple> popped;
    while (!merger.Empty()) {
      SidxTuple t;
      KVCSD_CO_ASSERT_OK(co_await merger.Pop(&t));
      popped.push_back(std::move(t));
    }
    KVCSD_CO_ASSERT(popped.size() == 7u);
    // Global (skey, pkey) order with the duplicate's run-0 copy first.
    const std::uint64_t want_markers[] = {0, 1000, 0, 1000, 1000, 0, 0};
    const std::uint64_t want_pkeys[] = {0, 1, 2, 2, 3, 4, 0};
    for (std::size_t i = 0; i + 1 < popped.size(); ++i) {
      const bool skey_le = popped[i].skey <= popped[i + 1].skey;
      EXPECT_TRUE(skey_le);
    }
    for (std::size_t i = 0; i < popped.size(); ++i) {
      EXPECT_EQ(popped[i].pkey, MakeFixedKey(want_pkeys[i])) << "at " << i;
      EXPECT_EQ(popped[i].vaddr, want_markers[i] + want_pkeys[i])
          << "at " << i;
    }
    EXPECT_EQ(popped.back().skey, "sk1");
  }(&f));
}

}  // namespace
}  // namespace kvcsd::device
