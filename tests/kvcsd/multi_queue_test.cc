// Multi-queue host path (DESIGN.md §11): async futures reaped by the
// per-client reactor, SQ/CQ arbitration fairness, pipelined bulk writes,
// retry backoff, and exactly-once completion across a power cycle with
// commands in flight on multiple queues.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "../testutil.h"
#include "client/client.h"
#include "common/keys.h"
#include "kvcsd/device.h"
#include "sim/fault.h"

namespace kvcsd::device {
namespace {

DeviceConfig SmallDevice() {
  DeviceConfig c;
  c.zns.zone_size = KiB(256);
  c.zns.num_zones = 64;
  c.zns.nand.channels = 8;
  c.dram_bytes = KiB(512);
  c.write_buffer_bytes = KiB(2);
  c.output_batch_bytes = KiB(16);
  return c;
}

// A multi-queue device that can be power-cycled: each Restart() swaps in
// a fresh incarnation (and a fresh queue set) over the surviving flash.
struct MultiQueueFixture {
  sim::Simulation sim;
  sim::FaultInjector faults{7};
  DeviceConfig cfg;
  nvme::QueueSetConfig qcfg;
  std::vector<std::unique_ptr<nvme::QueueSet>> sets;
  std::vector<std::unique_ptr<Device>> devs;
  sim::CpuPool host{&sim, "host", 8};

  explicit MultiQueueFixture(nvme::QueueSetConfig queues,
                             DeviceConfig config = SmallDevice())
      : cfg(config), qcfg(std::move(queues)) {
    cfg.zns.faults = &faults;
    faults.set_torn_tail_keep(0.5);
    sets.push_back(std::make_unique<nvme::QueueSet>(&sim, qcfg));
    devs.push_back(std::make_unique<Device>(&sim, cfg, sets.back().get()));
    devs.back()->Start();
  }

  nvme::QueueSet* set() { return sets.back().get(); }
  Device* dev() { return devs.back().get(); }

  client::Client MakeClient(client::ClientConfig config = {}) {
    return client::Client(set(), &host, hostenv::CostModel::Host(),
                          std::move(config));
  }

  void Restart() {
    sets.push_back(std::make_unique<nvme::QueueSet>(&sim, qcfg));
    devs.push_back(Device::Restart(&sim, cfg, sets.back().get(),
                                   *devs.back()));
    devs.back()->Start();
  }
};

nvme::QueueSetConfig TwoQueues() {
  nvme::QueueSetConfig q;
  q.num_queues = 2;
  return q;
}

std::string DetValue(std::uint64_t i) { return "value-" + std::to_string(i); }

// ---------------------------------------------------------------------------
// Async futures: puts and gets through the reactor, spread over two SQs.
// ---------------------------------------------------------------------------

TEST(MultiQueueTest, AsyncPutsAndGetsSpreadAcrossQueues) {
  MultiQueueFixture f(TwoQueues());
  client::Client db = f.MakeClient();  // kAnyQueue: round-robin across SQs
  constexpr std::uint64_t kKeys = 96;
  constexpr std::uint64_t kDepth = 16;

  testutil::RunSim(f.sim, [](client::Client* c) -> sim::Task<void> {
    auto ks = co_await c->CreateKeyspace("async");
    KVCSD_CO_ASSERT_OK(ks);

    // Bounded in-flight window of async puts, reaped in issue order.
    std::deque<client::StatusFuture> window;
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      if (window.size() >= kDepth) {
        KVCSD_CO_ASSERT_OK(co_await window.front().Await());
        window.pop_front();
      }
      auto put = co_await ks->PutAsync(MakeFixedKey(i), DetValue(i));
      window.push_back(std::move(put));
    }
    while (!window.empty()) {
      KVCSD_CO_ASSERT_OK(co_await window.front().Await());
      window.pop_front();
    }
    KVCSD_CO_ASSERT(c->async_inflight() == 0);

    KVCSD_CO_ASSERT_OK(co_await ks->Sync());
    KVCSD_CO_ASSERT_OK(co_await ks->Compact());
    KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());

    // Async reads, awaited in issue order against expected values.
    std::deque<std::pair<std::uint64_t, client::GetFuture>> reads;
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      if (reads.size() >= kDepth) {
        auto got = co_await reads.front().second.Await();
        KVCSD_CO_ASSERT_OK(got);
        KVCSD_CO_ASSERT(*got == DetValue(reads.front().first));
        reads.pop_front();
      }
      auto get = co_await ks->GetAsync(MakeFixedKey(i));
      reads.emplace_back(i, std::move(get));
    }
    while (!reads.empty()) {
      auto got = co_await reads.front().second.Await();
      KVCSD_CO_ASSERT_OK(got);
      KVCSD_CO_ASSERT(*got == DetValue(reads.front().first));
      reads.pop_front();
    }
    KVCSD_CO_ASSERT(c->async_inflight() == 0);
  }(&db));

  // Round-robin client placement exercised both pairs.
  EXPECT_GT(f.set()->pair(0)->submitted(), 0u);
  EXPECT_GT(f.set()->pair(1)->submitted(), 0u);
  EXPECT_EQ(f.set()->inflight(), 0u);
}

TEST(MultiQueueTest, BatchedPutsCompleteAndReadBack) {
  MultiQueueFixture f(TwoQueues());
  client::Client db = f.MakeClient();
  constexpr std::uint64_t kKeys = 48;

  testutil::RunSim(f.sim, [](client::Client* c) -> sim::Task<void> {
    auto ks = co_await c->CreateKeyspace("batched");
    KVCSD_CO_ASSERT_OK(ks);

    std::vector<std::pair<std::string, std::string>> pairs;
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      pairs.emplace_back(MakeFixedKey(i), DetValue(i));
    }
    auto futures = co_await ks->PutBatchAsync(std::move(pairs));
    KVCSD_CO_ASSERT(futures.size() == kKeys);
    for (auto& future : futures) {
      KVCSD_CO_ASSERT_OK(co_await future.Await());
    }

    KVCSD_CO_ASSERT_OK(co_await ks->Compact());
    KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
    for (std::uint64_t i = 0; i < kKeys; i += 7) {
      auto got = co_await ks->Get(MakeFixedKey(i));
      KVCSD_CO_ASSERT_OK(got);
      KVCSD_CO_ASSERT(*got == DetValue(i));
    }
  }(&db));
}

// ---------------------------------------------------------------------------
// Fairness: a flooded queue cannot starve its neighbor.
// ---------------------------------------------------------------------------

TEST(MultiQueueTest, CompetingFullQueueCannotStarveNeighbor) {
  MultiQueueFixture f(TwoQueues());
  client::ClientConfig flood_cfg;
  flood_cfg.queue_id = 0;
  flood_cfg.max_inflight = 256;
  flood_cfg.stats_prefix = "client.flood.";
  client::Client flooder = f.MakeClient(flood_cfg);
  client::ClientConfig victim_cfg;
  victim_cfg.queue_id = 1;
  victim_cfg.stats_prefix = "client.victim.";
  client::Client victim = f.MakeClient(victim_cfg);
  constexpr std::uint64_t kFloodPuts = 300;

  client::KeyspaceHandle flood_ks, victim_ks;
  testutil::RunSim(
      f.sim,
      [](client::Client* fc, client::Client* vc,
         client::KeyspaceHandle* fks,
         client::KeyspaceHandle* vks) -> sim::Task<void> {
        auto a = co_await fc->CreateKeyspace("flood");
        KVCSD_CO_ASSERT_OK(a);
        *fks = *a;
        auto b = co_await vc->CreateKeyspace("victim");
        KVCSD_CO_ASSERT_OK(b);
        *vks = *b;
      }(&flooder, &victim, &flood_ks, &victim_ks));

  Tick flood_done = 0, victim_done = 0;
  std::uint64_t flood_completed_at_victim_done = 0;
  f.sim.Spawn([](sim::Simulation* sim, client::KeyspaceHandle ks,
                 Tick* done) -> sim::Task<void> {
    std::deque<client::StatusFuture> window;
    for (std::uint64_t i = 0; i < kFloodPuts; ++i) {
      if (window.size() >= 256) {
        KVCSD_CO_ASSERT_OK(co_await window.front().Await());
        window.pop_front();
      }
      auto put = co_await ks.PutAsync(MakeFixedKey(i), DetValue(i));
      window.push_back(std::move(put));
    }
    while (!window.empty()) {
      KVCSD_CO_ASSERT_OK(co_await window.front().Await());
      window.pop_front();
    }
    *done = sim->Now();
  }(&f.sim, flood_ks, &flood_done));
  f.sim.Spawn([](sim::Simulation* sim, MultiQueueFixture* fx,
                 client::KeyspaceHandle ks, Tick* done,
                 std::uint64_t* flood_completed) -> sim::Task<void> {
    for (std::uint64_t i = 0; i < 8; ++i) {
      KVCSD_CO_ASSERT_OK(
          co_await ks.Put(MakeFixedKey(1000 + i), DetValue(i)));
    }
    *done = sim->Now();
    *flood_completed = fx->set()->pair(0)->completed();
  }(&f.sim, &f, victim_ks, &victim_done, &flood_completed_at_victim_done));
  f.sim.Run();

  // The victim's 8 puts finished while the flood was still in flight:
  // round-robin arbitration interleaved them instead of draining queue 0
  // first.
  EXPECT_GT(victim_done, 0u);
  EXPECT_GT(flood_done, 0u);
  EXPECT_LT(victim_done, flood_done);
  EXPECT_LT(flood_completed_at_victim_done, kFloodPuts);
  // Pinned clients stayed on their queues (plus one create each).
  EXPECT_GE(f.set()->pair(0)->submitted(), kFloodPuts);
  EXPECT_LT(f.set()->pair(1)->submitted(), 32u);
}

// ---------------------------------------------------------------------------
// Pipelined BulkWriter: frames overlap in flight, Drain() is the barrier.
// ---------------------------------------------------------------------------

TEST(MultiQueueTest, PipelinedBulkWriterDrainsAndReadsBack) {
  MultiQueueFixture f(TwoQueues());
  client::ClientConfig cfg;
  cfg.bulk_frame_bytes = KiB(1);  // small frames: force many in flight
  cfg.bulk_inflight_frames = 4;
  client::Client db = f.MakeClient(cfg);
  constexpr std::uint64_t kKeys = 200;

  testutil::RunSim(f.sim, [](client::Client* c) -> sim::Task<void> {
    auto ks = co_await c->CreateKeyspace("bulk");
    KVCSD_CO_ASSERT_OK(ks);
    auto writer = ks->NewBulkWriter();
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      KVCSD_CO_ASSERT_OK(co_await writer.Add(MakeFixedKey(i), DetValue(i)));
    }
    KVCSD_CO_ASSERT_OK(co_await writer.Drain());
    KVCSD_CO_ASSERT(writer.frames_inflight() == 0);
    KVCSD_CO_ASSERT(writer.frames_sent() > 4);

    KVCSD_CO_ASSERT_OK(co_await ks->Compact());
    KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
    for (std::uint64_t i = 0; i < kKeys; i += 13) {
      auto got = co_await ks->Get(MakeFixedKey(i));
      KVCSD_CO_ASSERT_OK(got);
      KVCSD_CO_ASSERT(*got == DetValue(i));
    }
  }(&db));
}

// ---------------------------------------------------------------------------
// SyncWithRetry sleeps with exponential backoff and counts retries.
// ---------------------------------------------------------------------------

TEST(MultiQueueTest, SyncWithRetryBacksOffExponentially) {
  MultiQueueFixture f(nvme::QueueSetConfig{});
  client::ClientConfig cfg;
  cfg.retry_backoff_base = Microseconds(100);
  cfg.retry_backoff_cap = Milliseconds(5);
  client::Client db = f.MakeClient(cfg);

  testutil::RunSim(
      f.sim,
      [](sim::Simulation* sim, client::Client* c,
         sim::FaultInjector* faults) -> sim::Task<void> {
        auto ks = co_await c->CreateKeyspace("retry");
        KVCSD_CO_ASSERT_OK(ks);

        // One injected failure: attempt 1 fails, one 100us backoff, then
        // attempt 2 succeeds.
        KVCSD_CO_ASSERT_OK(co_await ks->Put(MakeFixedKey(1), "v1"));
        sim::ErrorRule rule;
        rule.op = sim::FaultOp::kAppend;
        rule.times = 1;
        faults->AddErrorRule(rule);
        Tick begin = sim->Now();
        KVCSD_CO_ASSERT_OK(co_await ks->SyncWithRetry(3));
        KVCSD_CO_ASSERT(sim->Now() - begin >= Microseconds(100));
        KVCSD_CO_ASSERT(
            sim->stats().counter("client.sync.retries").value() == 1);

        // Two failures: backoffs of 100us then 200us before attempt 3.
        KVCSD_CO_ASSERT_OK(co_await ks->Put(MakeFixedKey(2), "v2"));
        sim::ErrorRule twice;
        twice.op = sim::FaultOp::kAppend;
        twice.times = 2;
        faults->AddErrorRule(twice);
        begin = sim->Now();
        KVCSD_CO_ASSERT_OK(co_await ks->SyncWithRetry(3));
        KVCSD_CO_ASSERT(sim->Now() - begin >= Microseconds(300));
        KVCSD_CO_ASSERT(
            sim->stats().counter("client.sync.retries").value() == 3);
      }(&f.sim, &db, &f.faults));
}

// ---------------------------------------------------------------------------
// Exactly-once completion across a power cycle with in-flight commands
// on both queues: every future resolves (OK or powered-off error), no
// command completes twice, and synced data survives recovery.
// ---------------------------------------------------------------------------

TEST(MultiQueueTest, EveryCommandCompletesExactlyOnceAcrossPowerCycle) {
  MultiQueueFixture f(TwoQueues());
  constexpr std::uint64_t kSynced = 40;
  constexpr std::uint64_t kInflightPuts = 60;

  client::ClientConfig ca;
  ca.queue_id = 0;
  ca.max_inflight = 128;
  ca.stats_prefix = "client.a.";
  client::ClientConfig cb;
  cb.queue_id = 1;
  cb.max_inflight = 128;
  cb.stats_prefix = "client.b.";

  {
    client::Client a = f.MakeClient(ca);
    client::Client b = f.MakeClient(cb);
    std::uint64_t resolved = 0, failed = 0;
    testutil::RunSim(
        f.sim,
        [](client::Client* ca2, client::Client* cb2,
           sim::FaultInjector* faults, std::uint64_t* n_resolved,
           std::uint64_t* n_failed) -> sim::Task<void> {
          auto ksa = co_await ca2->CreateKeyspace("a");
          KVCSD_CO_ASSERT_OK(ksa);
          auto ksb = co_await cb2->CreateKeyspace("b");
          KVCSD_CO_ASSERT_OK(ksb);
          for (std::uint64_t i = 0; i < kSynced; ++i) {
            KVCSD_CO_ASSERT_OK(
                co_await ksa->Put(MakeFixedKey(i), DetValue(i)));
            KVCSD_CO_ASSERT_OK(
                co_await ksb->Put(MakeFixedKey(i), DetValue(i)));
          }
          KVCSD_CO_ASSERT_OK(co_await ksa->Sync());
          KVCSD_CO_ASSERT_OK(co_await ksb->Sync());

          // Flood both queues with async puts, then cut power with the
          // tail still in flight (no suspension between the last submit
          // and the crash, so at least that command is unserviced).
          std::vector<client::StatusFuture> futures;
          for (std::uint64_t i = 0; i < kInflightPuts; ++i) {
            auto pa =
                co_await ksa->PutAsync(MakeFixedKey(kSynced + i), "late");
            futures.push_back(std::move(pa));
            auto pb =
                co_await ksb->PutAsync(MakeFixedKey(kSynced + i), "late");
            futures.push_back(std::move(pb));
          }
          faults->Crash();

          // Every future resolves exactly once; after the crash the
          // device answers the backlog with powered-off errors.
          for (auto& future : futures) {
            Status s = co_await future.Await();
            ++*n_resolved;
            if (!s.ok()) ++*n_failed;
          }
          KVCSD_CO_ASSERT(ca2->async_inflight() == 0);
          KVCSD_CO_ASSERT(cb2->async_inflight() == 0);
        }(&a, &b, &f.faults, &resolved, &failed));

    EXPECT_EQ(resolved, 2 * kInflightPuts);
    EXPECT_GT(failed, 0u);  // the crash caught commands in flight
    // Both pairs drained: completions posted once per submission.
    EXPECT_EQ(f.set()->pair(0)->submitted(), f.set()->pair(0)->completed());
    EXPECT_EQ(f.set()->pair(1)->submitted(), f.set()->pair(1)->completed());
    EXPECT_EQ(f.set()->inflight(), 0u);
  }

  // Power back on: synced data on both keyspaces survived.
  f.Restart();
  client::Client db = f.MakeClient();
  testutil::RunSim(
      f.sim, [](Device* dev, client::Client* c) -> sim::Task<void> {
        KVCSD_CO_ASSERT_OK(co_await dev->Recover());
        for (const char* name : {"a", "b"}) {
          auto ks = co_await c->OpenKeyspace(name);
          KVCSD_CO_ASSERT_OK(ks);
          auto stat = co_await ks->GetStat();
          KVCSD_CO_ASSERT_OK(stat);
          KVCSD_CO_ASSERT(stat->num_kvs >= kSynced);
          if (stat->state != "COMPACTED") {
            KVCSD_CO_ASSERT_OK(co_await ks->Compact());
            KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
          }
          for (std::uint64_t i = 0; i < kSynced; i += 7) {
            auto got = co_await ks->Get(MakeFixedKey(i));
            KVCSD_CO_ASSERT_OK(got);
            KVCSD_CO_ASSERT(*got == DetValue(i));
          }
        }
      }(f.dev(), &db));
}

}  // namespace
}  // namespace kvcsd::device
