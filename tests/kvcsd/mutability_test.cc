// Mutable-keyspace semantics (DESIGN.md §12): last-writer-wins overwrites
// within the WRITABLE phase, point deletes, delta-log mutations after
// compaction, merged reads across the sorted run and the live delta, and
// the incremental re-compaction that folds the delta back into the run.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "../testutil.h"
#include "client/client.h"
#include "common/crc32c.h"
#include "common/keys.h"
#include "kvcsd/device.h"
#include "sim/fault.h"

namespace kvcsd::device {
namespace {

DeviceConfig SmallDevice() {
  DeviceConfig c;
  c.zns.zone_size = MiB(1);
  c.zns.num_zones = 256;
  c.zns.nand.channels = 8;
  c.dram_bytes = KiB(512);
  c.write_buffer_bytes = KiB(8);  // tiny: overwrites span many flushes
  return c;
}

struct CsdFixture {
  sim::Simulation sim;
  nvme::QueueSet qp{&sim, nvme::PcieConfig{}};
  Device dev{&sim, SmallDevice(), &qp};
  sim::CpuPool host{&sim, "host", 8};
  client::Client db{&qp, &host, hostenv::CostModel::Host()};

  CsdFixture() { dev.Start(); }

  // value = 28 pad bytes + f32 energy (little-endian).
  static std::string EnergyValue(float energy) {
    std::string v(28, 'p');
    char buf[4];
    std::memcpy(buf, &energy, 4);
    v.append(buf, 4);
    return v;
  }
};

std::uint32_t Fingerprint(
    const std::vector<std::pair<std::string, std::string>>& rows) {
  std::uint32_t crc = 0;
  for (const auto& [key, value] : rows) {
    crc = crc32c::Extend(crc, key.data(), key.size());
    crc = crc32c::Extend(crc, value.data(), value.size());
  }
  return crc;
}

// --------------------------------------------------------------------------
// Satellite 1: LWW for duplicate PUTs within the WRITABLE phase. The same
// key is overwritten many times with filler traffic in between, so the
// versions land in different flush batches (and, with a tiny write buffer,
// different KLOG zones). Compaction must keep only the newest by KLOG seq.
// --------------------------------------------------------------------------
TEST(MutabilityTest, LwwOverwriteAcrossZoneBoundaries) {
  CsdFixture f;
  constexpr std::uint64_t kFiller = 3000;
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("lww")).value();
    // Interleave: overwrite key 7 every 500 filler puts; the filler pushes
    // each version of key 7 into a different flush batch / zone region.
    std::uint32_t version = 0;
    for (std::uint64_t i = 0; i < kFiller; ++i) {
      KVCSD_CO_ASSERT_OK(
          co_await ks.Put(MakeFixedKey(i), "filler-" + std::to_string(i)));
      if (i % 500 == 0) {
        ++version;
        KVCSD_CO_ASSERT_OK(co_await ks.Put(
            MakeFixedKey(7), "version-" + std::to_string(version)));
      }
    }
    // Final overwrite, then compact.
    KVCSD_CO_ASSERT_OK(co_await ks.Put(MakeFixedKey(7), "version-final"));
    KVCSD_CO_ASSERT_OK(co_await ks.Compact());
    KVCSD_CO_ASSERT_OK(co_await ks.WaitCompaction());

    auto got = co_await ks.Get(MakeFixedKey(7));
    KVCSD_CO_ASSERT_OK(got);
    KVCSD_CO_ASSERT(*got == "version-final");

    // Duplicates collapse: num_kvs counts unique keys.
    auto stat = co_await ks.GetStat();
    KVCSD_CO_ASSERT_OK(stat);
    KVCSD_CO_ASSERT(stat->num_kvs == kFiller);

    // Fingerprint the full scan and compare against a model built from the
    // newest versions only — a stale version of key 7 anywhere in the run
    // changes the crc.
    std::vector<std::pair<std::string, std::string>> rows;
    KVCSD_CO_ASSERT_OK(co_await ks.Scan("", "\x7f", 0, &rows));
    KVCSD_CO_ASSERT(rows.size() == kFiller);
    std::vector<std::pair<std::string, std::string>> model;
    for (std::uint64_t i = 0; i < kFiller; ++i) {
      model.emplace_back(MakeFixedKey(i), i == 7 ? "version-final"
                                                 : "filler-" + std::to_string(i));
    }
    KVCSD_CO_ASSERT(Fingerprint(rows) == Fingerprint(model));
  }(&f.db));
}

// --------------------------------------------------------------------------
// Satellite 2: point deletes carry correct statuses. A delete in the
// WRITABLE phase is a blind tombstone (Ok even for absent keys) that
// suppresses the key at compaction; the per-opcode counter ticks.
// --------------------------------------------------------------------------
TEST(MutabilityTest, DeleteBeforeCompactionSuppressesKey) {
  CsdFixture f;
  testutil::RunSim(f.sim, [](client::Client* db,
                             sim::Simulation* sim) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("del")).value();
    for (std::uint64_t i = 0; i < 100; ++i) {
      KVCSD_CO_ASSERT_OK(co_await ks.Put(MakeFixedKey(i), "v" + std::to_string(i)));
    }
    // Blind delete of an absent key is Ok (tombstone over nothing).
    KVCSD_CO_ASSERT_OK(co_await ks.Delete(MakeFixedKey(999999)));
    // Delete key 42, then put-after-delete on key 43 (newest wins).
    KVCSD_CO_ASSERT_OK(co_await ks.Delete(MakeFixedKey(42)));
    KVCSD_CO_ASSERT_OK(co_await ks.Delete(MakeFixedKey(43)));
    KVCSD_CO_ASSERT_OK(co_await ks.Put(MakeFixedKey(43), "resurrected"));
    KVCSD_CO_ASSERT_OK(co_await ks.Compact());
    KVCSD_CO_ASSERT_OK(co_await ks.WaitCompaction());

    auto gone = co_await ks.Get(MakeFixedKey(42));
    KVCSD_CO_ASSERT(gone.status().IsNotFound());
    auto back = co_await ks.Get(MakeFixedKey(43));
    KVCSD_CO_ASSERT_OK(back);
    KVCSD_CO_ASSERT(*back == "resurrected");

    auto stat = co_await ks.GetStat();
    KVCSD_CO_ASSERT_OK(stat);
    KVCSD_CO_ASSERT(stat->num_kvs == 99);  // 100 puts - deleted 42

    // Range scan agrees.
    std::vector<std::pair<std::string, std::string>> rows;
    KVCSD_CO_ASSERT_OK(co_await ks.Scan("", "\x7f", 0, &rows));
    KVCSD_CO_ASSERT(rows.size() == 99);

    // Per-opcode accounting: 3 deletes were dispatched.
    KVCSD_CO_ASSERT(sim->stats().counter_value("device.cmd.kv_delete") == 3);
  }(&f.db, &f.sim));
}

// --------------------------------------------------------------------------
// Tentpole: after compaction the keyspace accepts PUT/DELETE into a delta
// log; point, primary-range, and secondary-range queries all merge the
// sorted run with the live delta under last-writer-wins.
// --------------------------------------------------------------------------
TEST(MutabilityTest, DeltaMutationsVisibleInAllQueryTypes) {
  CsdFixture f;
  constexpr std::uint64_t kKeys = 2000;
  testutil::RunSim(f.sim, [](client::Client* db,
                             sim::Simulation* sim) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("delta")).value();
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      KVCSD_CO_ASSERT_OK(co_await ks.Put(
          MakeFixedKey(i), CsdFixture::EnergyValue(static_cast<float>(i))));
    }
    nvme::SecondaryIndexSpec energy;
    energy.name = "energy";
    energy.value_offset = 28;
    energy.value_length = 4;
    energy.type = nvme::SecondaryKeyType::kF32;
    std::vector<nvme::SecondaryIndexSpec> specs;
    specs.push_back(energy);
    KVCSD_CO_ASSERT_OK(co_await ks.CompactWithIndexes(std::move(specs)));
    KVCSD_CO_ASSERT_OK(co_await ks.WaitCompaction());

    // Mutations into the delta: overwrite key 100 (energy 100 -> 5000.5),
    // delete key 200, insert brand-new key kKeys+1 (energy 6000.5).
    KVCSD_CO_ASSERT_OK(
        co_await ks.Put(MakeFixedKey(100), CsdFixture::EnergyValue(5000.5f)));
    KVCSD_CO_ASSERT_OK(co_await ks.Delete(MakeFixedKey(200)));
    KVCSD_CO_ASSERT_OK(co_await ks.Put(MakeFixedKey(kKeys + 1),
                                       CsdFixture::EnergyValue(6000.5f)));

    // Point lookups: delta wins over the run.
    auto updated = co_await ks.Get(MakeFixedKey(100));
    KVCSD_CO_ASSERT_OK(updated);
    KVCSD_CO_ASSERT(*updated == CsdFixture::EnergyValue(5000.5f));
    auto deleted = co_await ks.Get(MakeFixedKey(200));
    KVCSD_CO_ASSERT(deleted.status().IsNotFound());
    auto fresh = co_await ks.Get(MakeFixedKey(kKeys + 1));
    KVCSD_CO_ASSERT_OK(fresh);
    KVCSD_CO_ASSERT(*fresh == CsdFixture::EnergyValue(6000.5f));
    KVCSD_CO_ASSERT(sim->stats().counter_value("device.query.delta_hits") >= 2);

    // num_kvs = run entries + live delta entries. Until the delta is
    // folded the device cannot tell an overwrite from an insert without
    // reading the run, so the overwrite of key 100 double-counts and the
    // tombstone over key 200 does not subtract: 2000 + 2.
    auto stat = co_await ks.GetStat();
    KVCSD_CO_ASSERT_OK(stat);
    KVCSD_CO_ASSERT(stat->num_kvs == kKeys + 2);

    // Primary range over [90, 210]: sees the overwrite, hides the delete.
    std::vector<std::pair<std::string, std::string>> rows;
    KVCSD_CO_ASSERT_OK(
        co_await ks.Scan(MakeFixedKey(90), MakeFixedKey(210), 0, &rows));
    KVCSD_CO_ASSERT(rows.size() == 120);  // 121 keys in range minus key 200
    bool saw_updated = false;
    for (const auto& [k, v] : rows) {
      KVCSD_CO_ASSERT(k != MakeFixedKey(200));
      if (k == MakeFixedKey(100)) {
        saw_updated = true;
        KVCSD_CO_ASSERT(v == CsdFixture::EnergyValue(5000.5f));
      }
    }
    KVCSD_CO_ASSERT(saw_updated);

    // Limit cut still honours the client limit after tombstone suppression.
    rows.clear();
    KVCSD_CO_ASSERT_OK(
        co_await ks.Scan(MakeFixedKey(195), MakeFixedKey(300), 10, &rows));
    KVCSD_CO_ASSERT(rows.size() == 10);
    KVCSD_CO_ASSERT(rows[5].first == MakeFixedKey(201));  // 200 suppressed

    // Secondary range: the overwritten tuple moved from skey 100 to
    // 5000.5, the deleted tuple vanished from skey 200, the new tuple
    // appears at 6000.5.
    rows.clear();
    KVCSD_CO_ASSERT_OK(
        co_await ks.QuerySecondaryRangeF32("energy", 99.5f, 100.5f, 0, &rows));
    KVCSD_CO_ASSERT(rows.empty());  // old tuple for key 100 is stale
    rows.clear();
    KVCSD_CO_ASSERT_OK(co_await ks.QuerySecondaryRangeF32("energy", 199.5f,
                                                          200.5f, 0, &rows));
    KVCSD_CO_ASSERT(rows.empty());  // deleted
    rows.clear();
    KVCSD_CO_ASSERT_OK(co_await ks.QuerySecondaryRangeF32("energy", 4000.0f,
                                                          7000.0f, 0, &rows));
    KVCSD_CO_ASSERT(rows.size() == 2);
    KVCSD_CO_ASSERT(rows[0].first == MakeFixedKey(100));
    KVCSD_CO_ASSERT(rows[0].second == CsdFixture::EnergyValue(5000.5f));
    KVCSD_CO_ASSERT(rows[1].first == MakeFixedKey(kKeys + 1));
  }(&f.db, &f.sim));
}

// --------------------------------------------------------------------------
// Tentpole: incremental re-compaction folds the delta into the existing
// run without a full re-sort — most PIDX blocks are retained by reference,
// the delta is reclaimed, and every query type stays correct afterwards.
// --------------------------------------------------------------------------
TEST(MutabilityTest, IncrementalRecompactionFoldsDelta) {
  CsdFixture f;
  constexpr std::uint64_t kKeys = 4000;
  testutil::RunSim(f.sim, [](client::Client* db,
                             sim::Simulation* sim) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("fold")).value();
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      KVCSD_CO_ASSERT_OK(co_await ks.Put(
          MakeFixedKey(i), CsdFixture::EnergyValue(static_cast<float>(i))));
    }
    nvme::SecondaryIndexSpec energy;
    energy.name = "energy";
    energy.value_offset = 28;
    energy.value_length = 4;
    energy.type = nvme::SecondaryKeyType::kF32;
    std::vector<nvme::SecondaryIndexSpec> specs;
    specs.push_back(energy);
    KVCSD_CO_ASSERT_OK(co_await ks.CompactWithIndexes(std::move(specs)));
    KVCSD_CO_ASSERT_OK(co_await ks.WaitCompaction());

    // A clustered batch of delta mutations (keys 500..519 overwritten,
    // 600..604 deleted, 2 inserts beyond the old max key).
    for (std::uint64_t i = 500; i < 520; ++i) {
      KVCSD_CO_ASSERT_OK(co_await ks.Put(
          MakeFixedKey(i), CsdFixture::EnergyValue(static_cast<float>(i) + 0.25f)));
    }
    for (std::uint64_t i = 600; i < 605; ++i) {
      KVCSD_CO_ASSERT_OK(co_await ks.Delete(MakeFixedKey(i)));
    }
    KVCSD_CO_ASSERT_OK(co_await ks.Put(MakeFixedKey(kKeys + 10),
                                       CsdFixture::EnergyValue(9000.0f)));
    KVCSD_CO_ASSERT_OK(co_await ks.Put(MakeFixedKey(kKeys + 11),
                                       CsdFixture::EnergyValue(9001.0f)));

    // Fingerprint the merged view BEFORE the fold...
    std::vector<std::pair<std::string, std::string>> before;
    KVCSD_CO_ASSERT_OK(co_await ks.Scan("", "\x7f", 0, &before));

    // ...fold the delta into the run...
    KVCSD_CO_ASSERT_OK(co_await ks.Compact());
    KVCSD_CO_ASSERT_OK(co_await ks.WaitCompaction());
    KVCSD_CO_ASSERT(sim->stats().counter_value("device.recompact.done") == 1);
    KVCSD_CO_ASSERT(sim->stats().counter_value("device.recompact.delta_keys") ==
                    27);
    // Incremental, not a re-sort: the untouched majority of PIDX blocks is
    // carried over by reference.
    const std::uint64_t retained =
        sim->stats().counter_value("device.recompact.pidx_blocks_retained");
    const std::uint64_t rebuilt =
        sim->stats().counter_value("device.recompact.pidx_blocks_rebuilt");
    KVCSD_CO_ASSERT(retained > 0);
    KVCSD_CO_ASSERT(rebuilt > 0);
    KVCSD_CO_ASSERT(retained > rebuilt);

    // ...and the folded run is byte-identical to the merged view.
    std::vector<std::pair<std::string, std::string>> after;
    KVCSD_CO_ASSERT_OK(co_await ks.Scan("", "\x7f", 0, &after));
    KVCSD_CO_ASSERT(after.size() == before.size());
    KVCSD_CO_ASSERT(Fingerprint(after) == Fingerprint(before));

    // num_kvs is exact again (delta reclaimed into run_entries).
    auto stat = co_await ks.GetStat();
    KVCSD_CO_ASSERT_OK(stat);
    KVCSD_CO_ASSERT(stat->num_kvs == kKeys + 2 - 5);

    // Point reads: updated value from the run, deleted key truly gone
    // (tombstone reclaimed, not just masked), insert served from the run.
    auto updated = co_await ks.Get(MakeFixedKey(500));
    KVCSD_CO_ASSERT_OK(updated);
    KVCSD_CO_ASSERT(*updated == CsdFixture::EnergyValue(500.25f));
    auto gone = co_await ks.Get(MakeFixedKey(600));
    KVCSD_CO_ASSERT(gone.status().IsNotFound());
    auto fresh = co_await ks.Get(MakeFixedKey(kKeys + 10));
    KVCSD_CO_ASSERT_OK(fresh);

    // Secondary index was folded too.
    std::vector<std::pair<std::string, std::string>> rows;
    KVCSD_CO_ASSERT_OK(co_await ks.QuerySecondaryRangeF32("energy", 500.1f,
                                                          519.5f, 0, &rows));
    KVCSD_CO_ASSERT(rows.size() == 20);  // the 20 re-tagged tuples
    rows.clear();
    KVCSD_CO_ASSERT_OK(co_await ks.QuerySecondaryRangeF32("energy", 599.5f,
                                                          604.5f, 0, &rows));
    KVCSD_CO_ASSERT(rows.empty());
    rows.clear();
    KVCSD_CO_ASSERT_OK(co_await ks.QuerySecondaryRangeF32("energy", 8999.0f,
                                                          9002.0f, 0, &rows));
    KVCSD_CO_ASSERT(rows.size() == 2);

    // The keyspace is mutable again after the fold: a second round of
    // delta traffic and a second fold both work.
    KVCSD_CO_ASSERT_OK(co_await ks.Delete(MakeFixedKey(500)));
    auto regone = co_await ks.Get(MakeFixedKey(500));
    KVCSD_CO_ASSERT(regone.status().IsNotFound());
    KVCSD_CO_ASSERT_OK(co_await ks.Compact());
    KVCSD_CO_ASSERT_OK(co_await ks.WaitCompaction());
    KVCSD_CO_ASSERT(sim->stats().counter_value("device.recompact.done") == 2);
    regone = co_await ks.Get(MakeFixedKey(500));
    KVCSD_CO_ASSERT(regone.status().IsNotFound());
  }(&f.db, &f.sim));
}

// --------------------------------------------------------------------------
// Satellite 3: a drop acknowledged while the keyspace is RECOMPACTING must
// defer until the fold finishes, then complete — never freeing the
// Keyspace under the running fold, never resurrecting the keyspace.
// --------------------------------------------------------------------------
TEST(MutabilityTest, DropDuringRecompactionDefers) {
  CsdFixture f;
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("dropfold")).value();
    for (std::uint64_t i = 0; i < 2000; ++i) {
      KVCSD_CO_ASSERT_OK(co_await ks.Put(MakeFixedKey(i), "v" + std::to_string(i)));
    }
    KVCSD_CO_ASSERT_OK(co_await ks.Compact());
    KVCSD_CO_ASSERT_OK(co_await ks.WaitCompaction());
    KVCSD_CO_ASSERT_OK(co_await ks.Put(MakeFixedKey(1), "delta"));
    KVCSD_CO_ASSERT_OK(co_await ks.Delete(MakeFixedKey(2)));
    // Kick off the fold; the command acks immediately, the fold runs on.
    KVCSD_CO_ASSERT_OK(co_await ks.Compact());
    // Drop while RECOMPACTING: acknowledged, deferred.
    KVCSD_CO_ASSERT_OK(co_await db->DropKeyspace("dropfold"));
    // New mutations race the deferred drop; whatever their status, the
    // device must not crash and the drop must win.
    (void)co_await ks.Put(MakeFixedKey(3), "race");
    (void)co_await ks.WaitCompaction();
    auto gone = co_await db->OpenKeyspace("dropfold");
    KVCSD_CO_ASSERT(gone.status().code() == StatusCode::kNotFound);
    // Zones were reclaimed: a fresh keyspace takes their place.
    auto fresh = co_await db->CreateKeyspace("fresh");
    KVCSD_CO_ASSERT_OK(fresh);
    KVCSD_CO_ASSERT_OK(co_await fresh->Put(MakeFixedKey(1), "v"));
    KVCSD_CO_ASSERT_OK(co_await fresh->Sync());
  }(&f.db));
}

// --------------------------------------------------------------------------
// Satellite 4: mutability across power cycles. Delta mutations synced
// before a power cut must replay from the delta log on recovery, with
// merged query results identical to the pre-crash view; a crash at every
// named point in the re-compaction path must recover to the same bytes.
// --------------------------------------------------------------------------

DeviceConfig SmallFaultyDevice() {
  DeviceConfig c;
  c.zns.zone_size = KiB(256);
  c.zns.num_zones = 64;
  c.zns.nand.channels = 8;
  c.dram_bytes = KiB(512);
  c.write_buffer_bytes = KiB(2);
  c.output_batch_bytes = KiB(16);
  return c;
}

struct PowerCycleFixture {
  sim::Simulation sim;
  sim::FaultInjector faults{7};
  DeviceConfig cfg;
  std::vector<std::unique_ptr<nvme::QueueSet>> qps;
  std::vector<std::unique_ptr<Device>> devs;
  sim::CpuPool host{&sim, "host", 8};
  std::unique_ptr<client::Client> db;

  explicit PowerCycleFixture(DeviceConfig config = SmallFaultyDevice())
      : cfg(config) {
    cfg.zns.faults = &faults;
    faults.set_torn_tail_keep(0.5);
    qps.push_back(std::make_unique<nvme::QueueSet>(&sim, nvme::PcieConfig{}));
    devs.push_back(std::make_unique<Device>(&sim, cfg, qps.back().get()));
    devs.back()->Start();
    db = std::make_unique<client::Client>(qps.back().get(), &host,
                                          hostenv::CostModel::Host());
  }

  Device* dev() { return devs.back().get(); }

  void Restart() {
    qps.push_back(std::make_unique<nvme::QueueSet>(&sim, nvme::PcieConfig{}));
    devs.push_back(
        Device::Restart(&sim, cfg, qps.back().get(), *devs.back()));
    devs.back()->Start();
    db = std::make_unique<client::Client>(qps.back().get(), &host,
                                          hostenv::CostModel::Host());
  }
};

constexpr std::uint64_t kPcKeys = 600;

// Load + compact + mutate (overwrite / delete / insert) + sync.
sim::Task<void> LoadCompactMutate(client::Client* db, const std::string& name) {
  auto ks = co_await db->CreateKeyspace(name);
  KVCSD_CO_ASSERT_OK(ks);
  for (std::uint64_t i = 0; i < kPcKeys; ++i) {
    KVCSD_CO_ASSERT_OK(
        co_await ks->Put(MakeFixedKey(i), "value-" + std::to_string(i)));
  }
  KVCSD_CO_ASSERT_OK(co_await ks->Compact());
  KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
  KVCSD_CO_ASSERT_OK(co_await ks->Put(MakeFixedKey(10), "overwritten"));
  KVCSD_CO_ASSERT_OK(co_await ks->Delete(MakeFixedKey(20)));
  KVCSD_CO_ASSERT_OK(
      co_await ks->Put(MakeFixedKey(kPcKeys + 5), "inserted"));
  // Overwrite-then-delete and delete-then-overwrite chains: replay must
  // respect per-key seq order, not log-append order.
  KVCSD_CO_ASSERT_OK(co_await ks->Put(MakeFixedKey(30), "doomed"));
  KVCSD_CO_ASSERT_OK(co_await ks->Delete(MakeFixedKey(30)));
  KVCSD_CO_ASSERT_OK(co_await ks->Delete(MakeFixedKey(40)));
  KVCSD_CO_ASSERT_OK(co_await ks->Put(MakeFixedKey(40), "reborn"));
  KVCSD_CO_ASSERT_OK(co_await ks->Sync());
}

// The merged view every recovery (and the no-crash run) must agree on.
sim::Task<void> VerifyMutatedView(client::Client* db, const std::string& name,
                                  std::uint32_t* fingerprint) {
  auto ks = co_await db->OpenKeyspace(name);
  KVCSD_CO_ASSERT_OK(ks);
  auto updated = co_await ks->Get(MakeFixedKey(10));
  KVCSD_CO_ASSERT_OK(updated);
  KVCSD_CO_ASSERT(*updated == "overwritten");
  auto deleted = co_await ks->Get(MakeFixedKey(20));
  KVCSD_CO_ASSERT(deleted.status().IsNotFound());
  auto doomed = co_await ks->Get(MakeFixedKey(30));
  KVCSD_CO_ASSERT(doomed.status().IsNotFound());
  auto reborn = co_await ks->Get(MakeFixedKey(40));
  KVCSD_CO_ASSERT_OK(reborn);
  KVCSD_CO_ASSERT(*reborn == "reborn");
  auto inserted = co_await ks->Get(MakeFixedKey(kPcKeys + 5));
  KVCSD_CO_ASSERT_OK(inserted);
  KVCSD_CO_ASSERT(*inserted == "inserted");
  std::vector<std::pair<std::string, std::string>> rows;
  KVCSD_CO_ASSERT_OK(co_await ks->Scan("", "\x7f", 0, &rows));
  KVCSD_CO_ASSERT(rows.size() == kPcKeys - 1);  // -20, -30, +505, +40 net -1
  *fingerprint = Fingerprint(rows);
}

TEST(MutabilityTest, DeltaMutationsSurvivePowerCut) {
  // Reference fingerprint from a run that never crashes.
  std::uint32_t reference = 0;
  {
    PowerCycleFixture ref;
    testutil::RunSim(ref.sim, LoadCompactMutate(ref.db.get(), "pc"));
    testutil::RunSim(ref.sim,
                     VerifyMutatedView(ref.db.get(), "pc", &reference));
  }
  ASSERT_NE(reference, 0u);

  PowerCycleFixture f;
  testutil::RunSim(f.sim, LoadCompactMutate(f.db.get(), "pc"));
  f.faults.Crash();  // lights out after the sync: delta log is durable
  f.Restart();
  std::uint32_t recovered = 0;
  testutil::RunSim(f.sim, [](Device* dev) -> sim::Task<void> {
    KVCSD_CO_ASSERT_OK(co_await dev->Recover());
  }(f.dev()));
  testutil::RunSim(f.sim, VerifyMutatedView(f.db.get(), "pc", &recovered));
  EXPECT_EQ(recovered, reference);

  // The replayed delta folds cleanly: re-compact and verify again.
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = co_await db->OpenKeyspace("pc");
    KVCSD_CO_ASSERT_OK(ks);
    KVCSD_CO_ASSERT_OK(co_await ks->Compact());
    KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
  }(f.db.get()));
  std::uint32_t folded = 0;
  testutil::RunSim(f.sim, VerifyMutatedView(f.db.get(), "pc", &folded));
  EXPECT_EQ(folded, reference);
}

// Crash at every named point in the re-compaction path; recovery must
// produce the same merged bytes regardless of where the fold died.
class RecompactCrashPointTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RecompactCrashPointTest, RecoversToSameBytes) {
  const char* point = GetParam();

  std::uint32_t reference = 0;
  {
    PowerCycleFixture ref;
    testutil::RunSim(ref.sim, LoadCompactMutate(ref.db.get(), "rc"));
    testutil::RunSim(ref.sim,
                     VerifyMutatedView(ref.db.get(), "rc", &reference));
  }
  ASSERT_NE(reference, 0u);

  PowerCycleFixture f;
  testutil::RunSim(f.sim, LoadCompactMutate(f.db.get(), "rc"));
  f.faults.ArmCrashAtPoint(point, 1);
  testutil::RunSim(
      f.sim,
      [](client::Client* db, sim::FaultInjector* faults) -> sim::Task<void> {
        auto ks = co_await db->OpenKeyspace("rc");
        KVCSD_CO_ASSERT_OK(ks);
        Status s = co_await ks->Compact();
        if (s.ok()) (void)co_await ks->WaitCompaction();
        KVCSD_CO_ASSERT(faults->crashed());
      }(f.db.get(), &f.faults));
  ASSERT_EQ(f.faults.crash_point(), point);

  f.Restart();
  testutil::RunSim(f.sim, [](Device* dev) -> sim::Task<void> {
    KVCSD_CO_ASSERT_OK(co_await dev->Recover());
  }(f.dev()));
  std::uint32_t recovered = 0;
  testutil::RunSim(f.sim, VerifyMutatedView(f.db.get(), "rc", &recovered));
  EXPECT_EQ(recovered, reference) << point;

  // And the fold completes cleanly on the recovered state.
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = co_await db->OpenKeyspace("rc");
    KVCSD_CO_ASSERT_OK(ks);
    KVCSD_CO_ASSERT_OK(co_await ks->Compact());
    KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
  }(f.db.get()));
  std::uint32_t folded = 0;
  testutil::RunSim(f.sim, VerifyMutatedView(f.db.get(), "rc", &folded));
  EXPECT_EQ(folded, reference) << point;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RecompactCrashPointTest,
                         ::testing::Values("recompact.before_fold",
                                           "recompact.before_commit",
                                           "recompact.after_commit"),
                         [](const ::testing::TestParamInfo<const char*>& p) {
                           std::string name = p.param;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

// --------------------------------------------------------------------------
// Delta watermark (device.cc MaybeRequestDeltaFold): with
// delta_fold_watermark_bytes set, the device folds the delta back into the
// run on its own once the in-DRAM delta index crosses the threshold — no
// host Compact() involved. Below the watermark nothing fires; at the
// crossing the fold runs exactly once, the gauge drains to zero, and the
// merged view survives the fold byte-identically.
// --------------------------------------------------------------------------
TEST(MutabilityTest, DeltaWatermarkTriggersAutomaticFold) {
  // Each delta overwrite costs kDeltaEntryOverhead(48) + 16-byte key +
  // value bytes in the index, so ~14 entries trip the fold.
  constexpr std::uint64_t kWatermark = 1024;
  constexpr std::uint64_t kKeys = 200;
  sim::Simulation sim;
  nvme::QueueSet qp{&sim, nvme::PcieConfig{}};
  DeviceConfig cfg = SmallDevice();
  cfg.delta_fold_watermark_bytes = kWatermark;
  Device dev{&sim, cfg, &qp};
  sim::CpuPool host{&sim, "host", 8};
  client::Client db{&qp, &host, hostenv::CostModel::Host()};
  dev.Start();

  testutil::RunSim(sim, [](client::Client* dbp, Device* devp,
                           sim::Simulation* simp) -> sim::Task<void> {
    auto ks = (co_await dbp->CreateKeyspace("wm")).value();
    std::vector<std::pair<std::string, std::string>> model;
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      std::string value = "base-" + std::to_string(i);
      KVCSD_CO_ASSERT_OK(co_await ks.Put(MakeFixedKey(i), value));
      model.emplace_back(MakeFixedKey(i), std::move(value));
    }
    KVCSD_CO_ASSERT_OK(co_await ks.Compact());
    KVCSD_CO_ASSERT_OK(co_await ks.WaitCompaction());

    // 10 delta overwrites = 710 index bytes (48 overhead + 16 key + 7
    // value each): under the watermark, so the delta accumulates (gauge
    // grows) and no fold fires.
    std::uint64_t expect_bytes = 0;
    for (std::uint64_t i = 0; i < 10; ++i) {
      model[i].second = "delta-" + std::to_string(i);
      KVCSD_CO_ASSERT_OK(co_await ks.Put(MakeFixedKey(i), model[i].second));
      expect_bytes += kDeltaEntryOverhead + 16 + model[i].second.size();
    }
    KVCSD_CO_ASSERT(
        simp->stats().counter_value("device.delta.watermark_folds") == 0);
    KVCSD_CO_ASSERT(expect_bytes < kWatermark);
    KVCSD_CO_ASSERT(devp->BuildHealthPage().Gauge("device.delta.index_bytes") ==
                    expect_bytes);

    // Keep mutating until the crossing. Once the watermark trips, the
    // keyspace flips to RECOMPACTING and further puts bounce with kBusy —
    // that IS the fold starting, so stop writing and let it finish.
    std::uint64_t i = 10;
    while (simp->stats().counter_value("device.delta.watermark_folds") == 0) {
      KVCSD_CO_ASSERT(i < kKeys);  // the watermark must trip well before
      std::string value = "delta-" + std::to_string(i);
      Status s = co_await ks.Put(MakeFixedKey(i), value);
      if (s.code() == StatusCode::kBusy) break;
      KVCSD_CO_ASSERT_OK(s);
      model[i].second = std::move(value);
      ++i;
    }
    KVCSD_CO_ASSERT(
        simp->stats().counter_value("device.delta.watermark_folds") == 1);
    KVCSD_CO_ASSERT_OK(co_await ks.WaitCompaction());

    // Folded: state is back to COMPACTED, the delta index drained, and
    // the merged view kept every overwrite.
    auto stat = co_await ks.GetStat();
    KVCSD_CO_ASSERT_OK(stat);
    KVCSD_CO_ASSERT(stat->state == "COMPACTED");
    KVCSD_CO_ASSERT(stat->num_kvs == kKeys);
    KVCSD_CO_ASSERT(devp->BuildHealthPage().Gauge("device.delta.index_bytes") ==
                    0);
    std::vector<std::pair<std::string, std::string>> rows;
    KVCSD_CO_ASSERT_OK(co_await ks.Scan("", "\x7f", 0, &rows));
    KVCSD_CO_ASSERT(rows.size() == kKeys);
    KVCSD_CO_ASSERT(Fingerprint(rows) == Fingerprint(model));

    // A second round of delta traffic re-arms the watermark: the fold is
    // recurring, not one-shot.
    std::uint64_t folds = 1;
    for (std::uint64_t j = 0; j < 40 && folds < 2; ++j) {
      std::string value = "again-" + std::to_string(j);
      Status s = co_await ks.Put(MakeFixedKey(j), value);
      if (s.code() == StatusCode::kBusy) {
        KVCSD_CO_ASSERT_OK(co_await ks.WaitCompaction());
        continue;
      }
      KVCSD_CO_ASSERT_OK(s);
      model[j].second = std::move(value);
      folds = simp->stats().counter_value("device.delta.watermark_folds");
    }
    KVCSD_CO_ASSERT(folds == 2);
    KVCSD_CO_ASSERT_OK(co_await ks.WaitCompaction());
  }(&db, &dev, &sim));
}

}  // namespace
}  // namespace kvcsd::device
