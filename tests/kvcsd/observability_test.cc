// Device-path observability across power cycles: the structured log ring
// is owned by the Simulation and must survive Device::Restart, and the
// stats/telemetry snapshots must stay consistent across a crash — no
// leaked in-flight commands, no double-counted stages, no gauge source
// left behind by the dead incarnation.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "../testutil.h"
#include "client/client.h"
#include "common/keys.h"
#include "kvcsd/device.h"
#include "sim/fault.h"
#include "sim/log.h"
#include "sim/telemetry.h"

namespace kvcsd::device {
namespace {

DeviceConfig SmallDevice() {
  DeviceConfig c;
  c.zns.zone_size = KiB(256);
  c.zns.num_zones = 64;
  c.zns.nand.channels = 8;
  c.dram_bytes = KiB(512);
  c.write_buffer_bytes = KiB(2);
  c.output_batch_bytes = KiB(16);
  return c;
}

// Same shape as recovery_test.cc's fixture: each Restart() swaps in a
// fresh device incarnation over the surviving flash bytes.
struct Fixture {
  sim::Simulation sim;
  sim::FaultInjector faults{11};
  DeviceConfig cfg;
  std::vector<std::unique_ptr<nvme::QueueSet>> qps;
  std::vector<std::unique_ptr<Device>> devs;
  sim::CpuPool host{&sim, "host", 8};
  std::unique_ptr<client::Client> db;

  Fixture() : cfg(SmallDevice()) {
    cfg.zns.faults = &faults;
    qps.push_back(std::make_unique<nvme::QueueSet>(&sim, nvme::PcieConfig{}));
    devs.push_back(std::make_unique<Device>(&sim, cfg, qps.back().get()));
    devs.back()->Start();
    db = std::make_unique<client::Client>(qps.back().get(), &host,
                                          hostenv::CostModel::Host());
  }

  Device* dev() { return devs.back().get(); }
  nvme::QueueSet* qp() { return qps.back().get(); }

  void Restart() {
    qps.push_back(std::make_unique<nvme::QueueSet>(&sim, nvme::PcieConfig{}));
    devs.push_back(
        Device::Restart(&sim, cfg, qps.back().get(), *devs.back()));
    devs.back()->Start();
    db = std::make_unique<client::Client>(qps.back().get(), &host,
                                          hostenv::CostModel::Host());
  }
};

sim::Task<void> LoadAndSync(client::Client* db, const std::string& name,
                            std::uint64_t count) {
  auto ks = co_await db->CreateKeyspace(name);
  KVCSD_CO_ASSERT_OK(ks);
  for (std::uint64_t i = 0; i < count; ++i) {
    KVCSD_CO_ASSERT_OK(
        co_await ks->Put(MakeFixedKey(i), "v" + std::to_string(i)));
  }
  KVCSD_CO_ASSERT_OK(co_await ks->Sync());
}

sim::Task<void> RecoverAndRead(Device* dev, client::Client* db,
                               const std::string& name,
                               std::uint64_t count) {
  KVCSD_CO_ASSERT_OK(co_await dev->Recover());
  auto ks = co_await db->OpenKeyspace(name);
  KVCSD_CO_ASSERT_OK(ks);
  auto stat = co_await ks->GetStat();
  KVCSD_CO_ASSERT_OK(stat);
  KVCSD_CO_ASSERT(stat->num_kvs >= count);
}

bool LogContains(const sim::Log& log, const std::string& needle) {
  for (const auto& e : log.entries()) {
    if (e.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(ObservabilityTest, LogRingSurvivesDeviceRestart) {
  Fixture f;
  testutil::RunSim(f.sim, LoadAndSync(f.db.get(), "obs", 100));

  f.sim.log().Info("test", "pre-crash marker");
  const std::uint64_t written_before = f.sim.log().total_written();
  f.faults.Crash();
  f.Restart();
  testutil::RunSim(f.sim,
                   RecoverAndRead(f.dev(), f.db.get(), "obs", 100));

  // The ring lives on the Simulation, not the Device: the pre-crash
  // breadcrumb is still there, and recovery appended after it.
  EXPECT_TRUE(LogContains(f.sim.log(), "pre-crash marker"));
  EXPECT_GT(f.sim.log().total_written(), written_before);
  bool recovery_logged = false;
  for (const auto& e : f.sim.log().entries()) {
    if (e.component == "recovery") recovery_logged = true;
  }
  EXPECT_TRUE(recovery_logged);
}

TEST(ObservabilityTest, StatsConsistentAcrossPowerCycle) {
  Fixture f;
  sim::Stats& stats = f.sim.stats();
  testutil::RunSim(f.sim, LoadAndSync(f.db.get(), "pc", 150));

  // Idle after the run: nothing in flight anywhere.
  EXPECT_EQ(f.dev()->inflight_commands(), 0u);
  EXPECT_EQ(f.qp()->inflight(), 0u);
  EXPECT_EQ(f.qp()->sq_depth(), 0u);
  const std::uint64_t submits_before =
      stats.histogram("client.stage.submit_ns").count();
  EXPECT_EQ(stats.histogram("client.stage.complete_ns").count(),
            submits_before);

  f.faults.Crash();
  f.Restart();
  testutil::RunSim(f.sim,
                   RecoverAndRead(f.dev(), f.db.get(), "pc", 150));

  // Post-cycle: every submitted command completed exactly once (a leaked
  // in-flight command or a double-counted completion breaks equality),
  // and the per-stage decomposition stayed paired.
  EXPECT_EQ(f.dev()->inflight_commands(), 0u);
  EXPECT_EQ(f.qp()->inflight(), 0u);
  const std::uint64_t submits = stats.histogram("client.stage.submit_ns")
                                    .count();
  EXPECT_GT(submits, submits_before);
  EXPECT_EQ(stats.histogram("client.stage.complete_ns").count(), submits);
  EXPECT_EQ(stats.histogram("device.stage.dispatch_ns").count(),
            stats.histogram("device.stage.exec_ns").count());
}

TEST(ObservabilityTest, TelemetrySourceReplacedAcrossRestart) {
  Fixture f;
  f.sim.telemetry().Enable(Microseconds(50));
  testutil::RunSim(f.sim, LoadAndSync(f.db.get(), "tm", 80));
  f.faults.Crash();
  f.Restart();
  testutil::RunSim(f.sim, RecoverAndRead(f.dev(), f.db.get(), "tm", 80));

  ASSERT_GT(f.sim.telemetry().size(), 0u);
  // Find the gauge id for the NVMe SQ depth, then check the last sample
  // reports it exactly once: the restarted device re-registered under the
  // "device" key and superseded the dead incarnation, so gauges are not
  // duplicated after a power cycle.
  std::uint32_t sq_id = UINT32_MAX;
  const auto& names = f.sim.telemetry().names();
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    if (names[i] == "nvme.sq_depth") sq_id = i;
  }
  ASSERT_NE(sq_id, UINT32_MAX);
  const auto& last = f.sim.telemetry().samples().back();
  std::size_t occurrences = 0;
  for (const auto& [id, value] : last.values) {
    if (id == sq_id) ++occurrences;
  }
  EXPECT_EQ(occurrences, 1u);
}

TEST(ObservabilityTest, TelemetryRingSaturatesCleanlyAcrossRestart) {
  // A deliberately tiny sample ring saturates mid-run and keeps rolling
  // through a power cycle: the drop counter accounts for every evicted
  // sample, and the survivors still carry exactly one "device" source's
  // gauges (the restarted incarnation's).
  Fixture f;
  f.sim.telemetry().Enable(Microseconds(10), /*max_samples=*/16);
  testutil::RunSim(f.sim, LoadAndSync(f.db.get(), "sat", 120));
  f.faults.Crash();
  f.Restart();
  testutil::RunSim(f.sim, RecoverAndRead(f.dev(), f.db.get(), "sat", 120));

  EXPECT_EQ(f.sim.telemetry().size(), 16u);
  EXPECT_GT(f.sim.telemetry().dropped(), 0u);
  // Samples remain in tick order after the wrap and the restart.
  Tick prev = 0;
  for (const auto& sample : f.sim.telemetry().samples()) {
    EXPECT_GE(sample.tick, prev);
    prev = sample.tick;
  }
  // The post-restart device's utilization gauges are present exactly once
  // per sample (no duplicate from the dead incarnation).
  std::uint32_t util_id = UINT32_MAX;
  const auto& names = f.sim.telemetry().names();
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    if (names[i] == "util.dispatch.dispatch") util_id = i;
  }
  ASSERT_NE(util_id, UINT32_MAX);
  std::size_t occurrences = 0;
  for (const auto& [id, value] : f.sim.telemetry().samples().back().values) {
    if (id == util_id) ++occurrences;
  }
  EXPECT_EQ(occurrences, 1u);
}

}  // namespace
}  // namespace kvcsd::device
