// Property sweeps over the KV-CSD device: for a grid of dataset sizes,
// value sizes, DRAM budgets, and cluster widths, the device must preserve
// every invariant an ordered KV store promises:
//   P1  every inserted key is retrievable with its exact value
//   P2  absent keys are NotFound
//   P3  range scans return exactly the sorted window
//   P4  secondary queries return exactly the matching records
//   P5  metadata (num_kvs, min/max key) matches ground truth
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "../testutil.h"
#include "client/client.h"
#include "common/keys.h"
#include "common/random.h"
#include "harness/testbed.h"
#include "kvcsd/device.h"

namespace kvcsd::device {
namespace {

struct PropertyCase {
  std::uint64_t keys;
  std::uint32_t value_bytes;
  std::uint64_t dram_bytes;        // sort-run budget driver
  std::uint32_t zones_per_cluster;
};

void PrintTo(const PropertyCase& c, std::ostream* os) {
  *os << "keys=" << c.keys << " value=" << c.value_bytes
      << " dram=" << c.dram_bytes << " width=" << c.zones_per_cluster;
}

class CsdPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(CsdPropertyTest, OrderedStoreInvariantsHold) {
  const PropertyCase& param = GetParam();

  DeviceConfig config;
  config.zns.zone_size = MiB(1);
  config.zns.num_zones = 512;
  config.zns.nand.channels = 8;
  config.dram_bytes = param.dram_bytes;
  config.write_buffer_bytes = KiB(16);
  config.zones.zones_per_cluster = param.zones_per_cluster;

  sim::Simulation simulation;
  nvme::QueueSet qp(&simulation, nvme::PcieConfig{});
  Device dev(&simulation, config, &qp);
  dev.Start();
  sim::CpuPool host(&simulation, "host", 8);
  client::Client db(&qp, &host, hostenv::CostModel::Host());

  // Ground truth: random keys (with collisions -> last write wins is NOT
  // exercised here; keys are unique by construction).
  std::map<std::string, std::string> truth;
  Rng rng(param.keys * 31 + param.value_bytes);
  while (truth.size() < param.keys) {
    const std::string key = MakeFixedKey(rng.Next() % (param.keys * 16));
    if (truth.contains(key)) continue;  // keep marker values unique
    std::string value(param.value_bytes, 'x');
    for (std::size_t i = 0; i < value.size(); ++i) {
      value[i] = static_cast<char>('a' + ((key[7] + i) & 0xf));
    }
    // f32 marker at offset value_bytes-4 for the secondary test (P4).
    const float marker = static_cast<float>(truth.size());
    std::memcpy(value.data() + value.size() - 4, &marker, 4);
    truth[key] = value;
  }

  testutil::RunSim(
      simulation,
      [](client::Client* c, const std::map<std::string, std::string>* data,
         std::uint32_t value_bytes) -> sim::Task<void> {
        auto ks = (co_await c->CreateKeyspace("prop")).value();
        auto writer = ks.NewBulkWriter();
        for (const auto& [key, value] : *data) {
          EXPECT_TRUE((co_await writer.Add(key, value)).ok());
        }
        EXPECT_TRUE((co_await writer.Flush()).ok());
        EXPECT_TRUE((co_await ks.Compact()).ok());
        EXPECT_TRUE((co_await ks.WaitCompaction()).ok());

        // P5: metadata.
        auto stat = co_await ks.GetStat();
        EXPECT_TRUE(stat.ok());
        EXPECT_EQ(stat->num_kvs, data->size());

        // P1: sampled point lookups (every 7th key plus both extremes).
        std::size_t index = 0;
        for (const auto& [key, value] : *data) {
          if (index % 7 == 0 || index == data->size() - 1) {
            auto got = co_await ks.Get(key);
            EXPECT_TRUE(got.ok()) << "missing key #" << index;
            if (got.ok()) {
              EXPECT_EQ(*got, value);
            }
          }
          ++index;
        }

        // P2: absent keys.
        auto missing = co_await ks.Get(MakeFixedKey(~0ull - 5));
        EXPECT_TRUE(missing.status().IsNotFound());

        // P3: a mid-range scan equals the ground-truth window.
        auto lo_it = std::next(data->begin(),
                               static_cast<std::ptrdiff_t>(data->size() / 3));
        auto hi_it = std::next(
            data->begin(), static_cast<std::ptrdiff_t>(data->size() / 2));
        std::vector<std::pair<std::string, std::string>> scanned;
        EXPECT_TRUE(
            (co_await ks.Scan(lo_it->first, hi_it->first, 0, &scanned))
                .ok());
        auto expect_it = lo_it;
        std::size_t i = 0;
        for (; expect_it != std::next(hi_it); ++expect_it, ++i) {
          if (i >= scanned.size()) break;
          EXPECT_EQ(scanned[i].first, expect_it->first);
          EXPECT_EQ(scanned[i].second, expect_it->second);
        }
        EXPECT_EQ(
            scanned.size(),
            static_cast<std::size_t>(std::distance(lo_it, hi_it)) + 1);

        // P4: secondary query on the trailing f32 marker: markers 10..19.
        EXPECT_TRUE((co_await ks.CreateSecondaryIndexF32(
                         "marker", value_bytes - 4))
                        .ok());
        std::vector<std::pair<std::string, std::string>> hits;
        EXPECT_TRUE((co_await ks.QuerySecondaryRangeF32(
                         "marker", 10.0f, 19.5f, 0, &hits))
                        .ok());
        EXPECT_EQ(hits.size(), data->size() >= 20 ? 10u : 0u);
      }(&db, &truth, param.value_bytes));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CsdPropertyTest,
    ::testing::Values(
        // keys, value bytes, DRAM budget, zones/cluster
        PropertyCase{200, 32, MiB(64), 4},     // trivially small
        PropertyCase{5000, 32, MiB(64), 4},    // single sort run
        PropertyCase{5000, 32, KiB(256), 4},   // many sort runs
        PropertyCase{5000, 32, KiB(64), 4},    // extreme DRAM pressure
        PropertyCase{3000, 128, MiB(64), 1},   // no striping
        PropertyCase{3000, 128, MiB(64), 8},   // wide striping
        PropertyCase{2000, 1024, KiB(512), 4}, // large values
        PropertyCase{20000, 32, KiB(512), 4})  // larger population
);

}  // namespace
}  // namespace kvcsd::device
