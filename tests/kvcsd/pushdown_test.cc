// In-device query pushdown (DESIGN.md §13): SELECT with value predicates,
// byte-range projection, and count/min/max/sum aggregation. Covers the
// happy paths plus the edge cases the wire format makes possible:
// predicates over values too short to hold the attribute, projections past
// the value end, aggregates over zero matches, pushdown against a keyspace
// with a live delta (tombstones must not count), and a power cut in the
// middle of a select scan.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "../testutil.h"
#include "client/client.h"
#include "common/keys.h"
#include "kvcsd/device.h"
#include "nvme/skey.h"
#include "sim/fault.h"

namespace kvcsd::device {
namespace {

DeviceConfig SmallDevice() {
  DeviceConfig c;
  c.zns.zone_size = MiB(1);
  c.zns.num_zones = 256;
  c.zns.nand.channels = 8;
  c.dram_bytes = KiB(512);
  c.write_buffer_bytes = KiB(8);
  return c;
}

struct CsdFixture {
  sim::Simulation sim;
  nvme::QueueSet qp{&sim, nvme::PcieConfig{}};
  Device dev{&sim, SmallDevice(), &qp};
  sim::CpuPool host{&sim, "host", 8};
  client::Client db{&qp, &host, hostenv::CostModel::Host()};

  CsdFixture() { dev.Start(); }

  // value = 28 pad bytes + f32 energy (little-endian) — the VPIC layout.
  static std::string EnergyValue(float energy) {
    std::string v(28, 'p');
    char buf[4];
    std::memcpy(buf, &energy, 4);
    v.append(buf, 4);
    return v;
  }
};

// Loads keys [0, count) with EnergyValue(i) and compacts.
sim::Task<client::KeyspaceHandle> LoadCompacted(client::Client* db,
                                                const std::string& name,
                                                std::uint64_t count) {
  auto ks = (co_await db->CreateKeyspace(name)).value();
  for (std::uint64_t i = 0; i < count; ++i) {
    auto put =
        co_await ks.Put(MakeFixedKey(i), CsdFixture::EnergyValue(
                                             static_cast<float>(i)));
    EXPECT_TRUE(put.ok());
  }
  EXPECT_TRUE((co_await ks.Compact()).ok());
  EXPECT_TRUE((co_await ks.WaitCompaction()).ok());
  co_return ks;
}

nvme::AggregateSpec EnergyAgg(nvme::AggregateFunc func) {
  nvme::AggregateSpec agg;
  agg.func = func;
  agg.value_offset = 28;
  agg.value_length = 4;
  agg.type = nvme::SecondaryKeyType::kF32;
  return agg;
}

// --------------------------------------------------------------------------
// Baseline: a primary-range select with an energy predicate returns exactly
// the host-model rows, and only those bytes cross the link.
// --------------------------------------------------------------------------
TEST(PushdownTest, SelectFiltersOnDevice) {
  CsdFixture f;
  constexpr std::uint64_t kKeys = 500;
  testutil::RunSim(f.sim, [](client::Client* db,
                             sim::Simulation* sim) -> sim::Task<void> {
    auto ks = co_await LoadCompacted(db, "sel", kKeys);

    client::KeyspaceHandle::SelectOptions opts;
    opts.pred = nvme::PredicateF32(nvme::PredicateOp::kGe, 28, 400.0f);
    std::vector<std::pair<std::string, std::string>> rows;
    KVCSD_CO_ASSERT_OK(co_await ks.Select("", "\x7f", opts, &rows));
    KVCSD_CO_ASSERT(rows.size() == 100);  // energies 400..499
    for (std::uint64_t i = 0; i < rows.size(); ++i) {
      KVCSD_CO_ASSERT(rows[i].first == MakeFixedKey(400 + i));
      KVCSD_CO_ASSERT(rows[i].second ==
                      CsdFixture::EnergyValue(static_cast<float>(400 + i)));
    }

    // Device-side accounting: every value was scanned, 1/5 matched.
    KVCSD_CO_ASSERT(
        sim->stats().counter_value("device.select.rows_scanned") == kKeys);
    KVCSD_CO_ASSERT(
        sim->stats().counter_value("device.select.rows_matched") == 100);
    KVCSD_CO_ASSERT(
        sim->stats().counter_value("device.select.bytes_scanned") ==
        kKeys * 32);

    // A limit caps matches, not scanned rows.
    opts.limit = 7;
    rows.clear();
    KVCSD_CO_ASSERT_OK(co_await ks.Select("", "\x7f", opts, &rows));
    KVCSD_CO_ASSERT(rows.size() == 7);
    KVCSD_CO_ASSERT(rows[0].first == MakeFixedKey(400));

    // Futures variant agrees with the sync one.
    opts.limit = 0;
    auto fut = co_await ks.SelectAsync("", "\x7f", opts);
    auto async_rows = co_await fut.Await();
    KVCSD_CO_ASSERT_OK(async_rows);
    KVCSD_CO_ASSERT(async_rows->size() == 100);
  }(&f.db, &f.sim));
}

// --------------------------------------------------------------------------
// Secondary-index-driven pushdown: the sidx narrows the scan, the predicate
// filters on a *different* byte range of the value.
// --------------------------------------------------------------------------
TEST(PushdownTest, SelectThroughSecondaryIndex) {
  CsdFixture f;
  constexpr std::uint64_t kKeys = 400;
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("sidx")).value();
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      // Pad byte differs for even/odd keys so a bytes-predicate can split
      // the sidx window in half.
      std::string v(28, i % 2 == 0 ? 'e' : 'o');
      const float energy = static_cast<float>(i);
      char buf[4];
      std::memcpy(buf, &energy, 4);
      v.append(buf, 4);
      KVCSD_CO_ASSERT_OK(co_await ks.Put(MakeFixedKey(i), v));
    }
    KVCSD_CO_ASSERT_OK(co_await ks.Compact());
    KVCSD_CO_ASSERT_OK(co_await ks.WaitCompaction());
    KVCSD_CO_ASSERT_OK(co_await ks.CreateSecondaryIndexF32("energy", 28));

    // Sidx window [100, 200) = 100 rows; even pad keeps 50 of them.
    client::KeyspaceHandle::SelectOptions opts;
    opts.index_name = "energy";
    opts.pred = nvme::PredicateBytes(nvme::PredicateOp::kEq, 0, "e");
    std::vector<std::pair<std::string, std::string>> rows;
    KVCSD_CO_ASSERT_OK(co_await ks.Select(
        nvme::EncodeSecondaryF32(100.0f), nvme::EncodeSecondaryF32(199.5f),
        opts, &rows));
    KVCSD_CO_ASSERT(rows.size() == 50);
    for (const auto& [key, value] : rows) {
      KVCSD_CO_ASSERT(value[0] == 'e');
    }

    // Same window, aggregated: count matches without shipping any rows.
    auto agg = co_await ks.Aggregate(nvme::EncodeSecondaryF32(100.0f),
                                     nvme::EncodeSecondaryF32(199.5f),
                                     EnergyAgg(nvme::AggregateFunc::kCount),
                                     opts);
    KVCSD_CO_ASSERT_OK(agg);
    KVCSD_CO_ASSERT(agg->rows == 50);
  }(&f.db));
}

// --------------------------------------------------------------------------
// Edge case: predicate over a value shorter than the attribute window.
// Short values can never match — they are skipped, counted, and must not
// fail the command.
// --------------------------------------------------------------------------
TEST(PushdownTest, PredicateOverShortValue) {
  CsdFixture f;
  testutil::RunSim(f.sim, [](client::Client* db,
                             sim::Simulation* sim) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("short")).value();
    // 10 full-width records, 5 short ones (too short for offset 28 + 4).
    for (std::uint64_t i = 0; i < 10; ++i) {
      KVCSD_CO_ASSERT_OK(co_await ks.Put(
          MakeFixedKey(i), CsdFixture::EnergyValue(static_cast<float>(i))));
    }
    for (std::uint64_t i = 10; i < 15; ++i) {
      KVCSD_CO_ASSERT_OK(co_await ks.Put(MakeFixedKey(i), "tiny"));
    }
    KVCSD_CO_ASSERT_OK(co_await ks.Compact());
    KVCSD_CO_ASSERT_OK(co_await ks.WaitCompaction());

    // energy >= 0 matches every full-width record but no short one, even
    // though the predicate itself accepts the minimum f32.
    client::KeyspaceHandle::SelectOptions opts;
    opts.pred = nvme::PredicateF32(nvme::PredicateOp::kGe, 28, 0.0f);
    std::vector<std::pair<std::string, std::string>> rows;
    KVCSD_CO_ASSERT_OK(co_await ks.Select("", "\x7f", opts, &rows));
    KVCSD_CO_ASSERT(rows.size() == 10);
    KVCSD_CO_ASSERT(
        sim->stats().counter_value("device.select.short_values") == 5);

    // Aggregating over the same predicate: the 5 short values are not rows.
    auto agg = co_await ks.Aggregate(
        "", "\x7f", EnergyAgg(nvme::AggregateFunc::kSum), opts);
    KVCSD_CO_ASSERT_OK(agg);
    KVCSD_CO_ASSERT(agg->rows == 10);
    KVCSD_CO_ASSERT(agg->valid);
    KVCSD_CO_ASSERT(agg->sum == 45.0);  // 0+1+...+9
  }(&f.db, &f.sim));
}

// --------------------------------------------------------------------------
// Edge case: projection range past the value end. The device clamps rather
// than faulting: a window straddling the end truncates, a window starting
// at or past the end yields an empty value (the key still ships).
// --------------------------------------------------------------------------
TEST(PushdownTest, ProjectionPastValueEnd) {
  CsdFixture f;
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("proj")).value();
    KVCSD_CO_ASSERT_OK(co_await ks.Put(MakeFixedKey(1), "abcdef"));
    KVCSD_CO_ASSERT_OK(co_await ks.Put(MakeFixedKey(2), "xy"));
    KVCSD_CO_ASSERT_OK(co_await ks.Compact());
    KVCSD_CO_ASSERT_OK(co_await ks.WaitCompaction());

    // Window [4, 4+8) truncates "abcdef" to "ef" and empties "xy".
    client::KeyspaceHandle::SelectOptions opts;
    opts.proj.enabled = true;
    opts.proj.offset = 4;
    opts.proj.length = 8;
    std::vector<std::pair<std::string, std::string>> rows;
    KVCSD_CO_ASSERT_OK(co_await ks.Select("", "\x7f", opts, &rows));
    KVCSD_CO_ASSERT(rows.size() == 2);
    KVCSD_CO_ASSERT(rows[0].second == "ef");
    KVCSD_CO_ASSERT(rows[1].second.empty());

    // In-bounds window for contrast.
    opts.proj.offset = 1;
    opts.proj.length = 2;
    rows.clear();
    KVCSD_CO_ASSERT_OK(co_await ks.Select("", "\x7f", opts, &rows));
    KVCSD_CO_ASSERT(rows[0].second == "bc");
    KVCSD_CO_ASSERT(rows[1].second == "y");

    // Projection is a select feature: an aggregate with one is rejected.
    auto agg = co_await ks.Aggregate(
        "", "\x7f", EnergyAgg(nvme::AggregateFunc::kCount), opts);
    KVCSD_CO_ASSERT(agg.status().code() == StatusCode::kInvalidArgument);
  }(&f.db));
}

// --------------------------------------------------------------------------
// Edge case: aggregate over zero matches. rows == 0, valid == false, and
// the scalars stay at their zero defaults instead of inventing extrema.
// --------------------------------------------------------------------------
TEST(PushdownTest, AggregateOverZeroMatches) {
  CsdFixture f;
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = co_await LoadCompacted(db, "zero", 50);

    client::KeyspaceHandle::SelectOptions opts;
    opts.pred = nvme::PredicateF32(nvme::PredicateOp::kGt, 28, 1e9f);
    for (const auto func :
         {nvme::AggregateFunc::kCount, nvme::AggregateFunc::kMin,
          nvme::AggregateFunc::kMax, nvme::AggregateFunc::kSum}) {
      auto agg = co_await ks.Aggregate("", "\x7f", EnergyAgg(func), opts);
      KVCSD_CO_ASSERT_OK(agg);
      KVCSD_CO_ASSERT(agg->rows == 0);
      KVCSD_CO_ASSERT(!agg->valid);
      KVCSD_CO_ASSERT(agg->sum == 0.0);
      KVCSD_CO_ASSERT(agg->min == 0.0 && agg->max == 0.0);
    }

    // An empty primary range (not just an unmatched predicate) agrees.
    auto agg = co_await ks.Aggregate(MakeFixedKey(1000), MakeFixedKey(2000),
                                     EnergyAgg(nvme::AggregateFunc::kCount));
    KVCSD_CO_ASSERT_OK(agg);
    KVCSD_CO_ASSERT(agg->rows == 0 && !agg->valid);
  }(&f.db));
}

// --------------------------------------------------------------------------
// Edge case: pushdown against a keyspace with a live delta. The overwrite
// must be seen at its new energy, the tombstoned record must not count, and
// the fresh insert must count — for both select and aggregate.
// --------------------------------------------------------------------------
TEST(PushdownTest, LiveDeltaTombstoneDoesNotCount) {
  CsdFixture f;
  constexpr std::uint64_t kKeys = 300;
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = co_await LoadCompacted(db, "delta", kKeys);

    // Baseline over energies >= 250: keys 250..299.
    client::KeyspaceHandle::SelectOptions opts;
    opts.pred = nvme::PredicateF32(nvme::PredicateOp::kGe, 28, 250.0f);
    auto before = co_await ks.Aggregate(
        "", "\x7f", EnergyAgg(nvme::AggregateFunc::kCount), opts);
    KVCSD_CO_ASSERT_OK(before);
    KVCSD_CO_ASSERT(before->rows == 50);

    // Delta mutations: kill one match, demote another below the threshold,
    // promote a low-energy key above it, and insert a brand-new match.
    KVCSD_CO_ASSERT_OK(co_await ks.Delete(MakeFixedKey(260)));
    KVCSD_CO_ASSERT_OK(
        co_await ks.Put(MakeFixedKey(270), CsdFixture::EnergyValue(1.5f)));
    KVCSD_CO_ASSERT_OK(
        co_await ks.Put(MakeFixedKey(10), CsdFixture::EnergyValue(900.0f)));
    KVCSD_CO_ASSERT_OK(co_await ks.Put(MakeFixedKey(kKeys + 7),
                                       CsdFixture::EnergyValue(901.0f)));

    // 50 - tombstone - demotion + promotion + insert = 50.
    auto after = co_await ks.Aggregate(
        "", "\x7f", EnergyAgg(nvme::AggregateFunc::kCount), opts);
    KVCSD_CO_ASSERT_OK(after);
    KVCSD_CO_ASSERT(after->rows == 50);

    // The select row set names the survivors exactly.
    std::vector<std::pair<std::string, std::string>> rows;
    KVCSD_CO_ASSERT_OK(co_await ks.Select("", "\x7f", opts, &rows));
    KVCSD_CO_ASSERT(rows.size() == 50);
    bool saw_promoted = false;
    bool saw_inserted = false;
    for (const auto& [key, value] : rows) {
      KVCSD_CO_ASSERT(key != MakeFixedKey(260));  // tombstoned
      KVCSD_CO_ASSERT(key != MakeFixedKey(270));  // demoted
      if (key == MakeFixedKey(10)) saw_promoted = true;
      if (key == MakeFixedKey(kKeys + 7)) saw_inserted = true;
    }
    KVCSD_CO_ASSERT(saw_promoted);
    KVCSD_CO_ASSERT(saw_inserted);

    // max reflects the delta insert, not just the compacted run.
    auto max = co_await ks.Aggregate(
        "", "\x7f", EnergyAgg(nvme::AggregateFunc::kMax), opts);
    KVCSD_CO_ASSERT_OK(max);
    KVCSD_CO_ASSERT(max->valid);
    KVCSD_CO_ASSERT(max->max == 901.0);
  }(&f.db));
}

// --------------------------------------------------------------------------
// Edge case: power cut during a select scan. The in-flight command fails,
// the crash point fires, and after restart + recovery the same select runs
// to completion against intact data.
// --------------------------------------------------------------------------
DeviceConfig SmallFaultyDevice() {
  DeviceConfig c;
  c.zns.zone_size = KiB(256);
  c.zns.num_zones = 64;
  c.zns.nand.channels = 8;
  c.dram_bytes = KiB(512);
  c.write_buffer_bytes = KiB(2);
  c.output_batch_bytes = KiB(16);
  return c;
}

struct PowerCycleFixture {
  sim::Simulation sim;
  sim::FaultInjector faults{7};
  DeviceConfig cfg;
  std::vector<std::unique_ptr<nvme::QueueSet>> qps;
  std::vector<std::unique_ptr<Device>> devs;
  sim::CpuPool host{&sim, "host", 8};
  std::unique_ptr<client::Client> db;

  PowerCycleFixture() : cfg(SmallFaultyDevice()) {
    cfg.zns.faults = &faults;
    faults.set_torn_tail_keep(0.5);
    qps.push_back(std::make_unique<nvme::QueueSet>(&sim, nvme::PcieConfig{}));
    devs.push_back(std::make_unique<Device>(&sim, cfg, qps.back().get()));
    devs.back()->Start();
    db = std::make_unique<client::Client>(qps.back().get(), &host,
                                          hostenv::CostModel::Host());
  }

  Device* dev() { return devs.back().get(); }

  void Restart() {
    qps.push_back(std::make_unique<nvme::QueueSet>(&sim, nvme::PcieConfig{}));
    devs.push_back(
        Device::Restart(&sim, cfg, qps.back().get(), *devs.back()));
    devs.back()->Start();
    db = std::make_unique<client::Client>(qps.back().get(), &host,
                                          hostenv::CostModel::Host());
  }
};

TEST(PushdownTest, PowerCutDuringSelectScan) {
  PowerCycleFixture f;
  constexpr std::uint64_t kKeys = 200;
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = (co_await db->CreateKeyspace("pcut")).value();
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      KVCSD_CO_ASSERT_OK(co_await ks.Put(
          MakeFixedKey(i), CsdFixture::EnergyValue(static_cast<float>(i))));
    }
    KVCSD_CO_ASSERT_OK(co_await ks.Compact());
    KVCSD_CO_ASSERT_OK(co_await ks.WaitCompaction());
  }(f.db.get()));

  // Arm the crash inside the select path, after row collection.
  f.faults.ArmCrashAtPoint("select.mid_scan", 1);
  testutil::RunSim(f.sim, [](client::Client* db,
                             sim::FaultInjector* faults) -> sim::Task<void> {
    auto ks = co_await db->OpenKeyspace("pcut");
    KVCSD_CO_ASSERT_OK(ks);
    client::KeyspaceHandle::SelectOptions opts;
    opts.pred = nvme::PredicateF32(nvme::PredicateOp::kGe, 28, 150.0f);
    std::vector<std::pair<std::string, std::string>> rows;
    auto st = co_await ks->Select("", "\x7f", opts, &rows);
    KVCSD_CO_ASSERT(!st.ok());
    KVCSD_CO_ASSERT(faults->crashed());
  }(f.db.get(), &f.faults));
  ASSERT_TRUE(f.faults.crashed());
  ASSERT_EQ(f.faults.crash_point(), "select.mid_scan");

  // Power cycle; the same select now completes against recovered data.
  f.Restart();
  testutil::RunSim(f.sim, [](Device* dev,
                             client::Client* db) -> sim::Task<void> {
    KVCSD_CO_ASSERT_OK(co_await dev->Recover());
    auto ks = co_await db->OpenKeyspace("pcut");
    KVCSD_CO_ASSERT_OK(ks);
    auto stat = co_await ks->GetStat();
    KVCSD_CO_ASSERT_OK(stat);
    if (stat->state != "COMPACTED") {
      KVCSD_CO_ASSERT_OK(co_await ks->Compact());
      KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
    }
    client::KeyspaceHandle::SelectOptions opts;
    opts.pred = nvme::PredicateF32(nvme::PredicateOp::kGe, 28, 150.0f);
    std::vector<std::pair<std::string, std::string>> rows;
    KVCSD_CO_ASSERT_OK(co_await ks->Select("", "\x7f", opts, &rows));
    KVCSD_CO_ASSERT(rows.size() == kKeys - 150);
    auto agg = co_await ks->Aggregate(
        "", "\x7f", EnergyAgg(nvme::AggregateFunc::kCount), opts);
    KVCSD_CO_ASSERT_OK(agg);
    KVCSD_CO_ASSERT(agg->rows == kKeys - 150);
  }(f.dev(), f.db.get()));
}

// --------------------------------------------------------------------------
// Wire-format validation: malformed descriptors fail fast with
// InvalidArgument instead of scanning.
// --------------------------------------------------------------------------
TEST(PushdownTest, RejectsMalformedDescriptors) {
  CsdFixture f;
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = co_await LoadCompacted(db, "bad", 10);

    // Typed predicate whose length disagrees with its type.
    client::KeyspaceHandle::SelectOptions opts;
    opts.pred = nvme::PredicateF32(nvme::PredicateOp::kGe, 28, 1.0f);
    opts.pred.value_length = 8;
    std::vector<std::pair<std::string, std::string>> rows;
    auto st = co_await ks.Select("", "\x7f", opts, &rows);
    KVCSD_CO_ASSERT(st.code() == StatusCode::kInvalidArgument);

    // Aggregate without a function.
    nvme::AggregateSpec no_func;
    auto agg = co_await ks.Aggregate("", "\x7f", no_func);
    KVCSD_CO_ASSERT(agg.status().code() == StatusCode::kInvalidArgument);

    // min/max/sum over a bytes attribute.
    nvme::AggregateSpec bytes_sum;
    bytes_sum.func = nvme::AggregateFunc::kSum;
    bytes_sum.value_offset = 0;
    bytes_sum.value_length = 4;
    bytes_sum.type = nvme::SecondaryKeyType::kBytes;
    agg = co_await ks.Aggregate("", "\x7f", bytes_sum);
    KVCSD_CO_ASSERT(agg.status().code() == StatusCode::kInvalidArgument);
  }(&f.db));
}

}  // namespace
}  // namespace kvcsd::device
