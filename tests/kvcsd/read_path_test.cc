// Read-path acceleration tests (DESIGN.md §10): the DRAM index-block
// cache, the compaction-built bloom filter, and the deduping /
// channel-parallel value gather — plus the edge cases around them (empty
// sketches, keys outside the key range, cache invalidation on drop and
// re-compaction, bloom survival across power cycles, and injected I/O
// errors on cached vs. uncached block reads).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "../testutil.h"
#include "client/client.h"
#include "common/keys.h"
#include "kvcsd/device.h"
#include "sim/fault.h"

namespace kvcsd::device {

// White-box access to Device::GatherValues (friended): dedupe and
// coalescing behavior is pinned directly instead of inferred from query
// timings.
struct DeviceTestPeer {
  using ValueRef = Device::ValueRef;
  static sim::Task<Result<std::vector<std::string>>> Gather(
      Device* dev, std::vector<Device::ValueRef> refs) {
    return dev->GatherValues(std::move(refs));
  }
};

namespace {

DeviceConfig SmallDevice() {
  DeviceConfig c;
  c.zns.zone_size = MiB(1);
  c.zns.num_zones = 256;
  c.zns.nand.channels = 8;
  c.dram_bytes = KiB(512);
  c.write_buffer_bytes = KiB(8);
  return c;
}

struct ReadPathFixture {
  sim::Simulation sim;
  nvme::QueueSet qp{&sim, nvme::PcieConfig{}};
  Device dev;
  sim::CpuPool host{&sim, "host", 8};
  client::Client db{&qp, &host, hostenv::CostModel::Host()};

  explicit ReadPathFixture(const DeviceConfig& cfg = SmallDevice())
      : dev(&sim, cfg, &qp) {
    dev.Start();
  }

  std::uint64_t Counter(const std::string& name) const {
    return sim.stats().counter_value(name);
  }
};

// Like ReadPathFixture but power-cyclable, with a fault injector always
// wired (mirrors recovery_test.cc).
struct PowerCycleFixture {
  sim::Simulation sim;
  sim::FaultInjector faults{7};
  DeviceConfig cfg;
  std::vector<std::unique_ptr<nvme::QueueSet>> qps;
  std::vector<std::unique_ptr<Device>> devs;
  sim::CpuPool host{&sim, "host", 8};
  std::unique_ptr<client::Client> db;

  explicit PowerCycleFixture(DeviceConfig config = SmallDevice())
      : cfg(config) {
    cfg.zns.faults = &faults;
    qps.push_back(std::make_unique<nvme::QueueSet>(&sim, nvme::PcieConfig{}));
    devs.push_back(std::make_unique<Device>(&sim, cfg, qps.back().get()));
    devs.back()->Start();
    db = std::make_unique<client::Client>(qps.back().get(), &host,
                                          hostenv::CostModel::Host());
  }

  Device* dev() { return devs.back().get(); }

  void Restart() {
    qps.push_back(std::make_unique<nvme::QueueSet>(&sim, nvme::PcieConfig{}));
    devs.push_back(
        Device::Restart(&sim, cfg, qps.back().get(), *devs.back()));
    devs.back()->Start();
    db = std::make_unique<client::Client>(qps.back().get(), &host,
                                          hostenv::CostModel::Host());
  }

  std::uint64_t Counter(const std::string& name) const {
    return sim.stats().counter_value(name);
  }
};

std::string DetValue(std::uint64_t i) { return "value-" + std::to_string(i); }

sim::Task<void> LoadAndCompact(client::Client* db, const std::string& name,
                               std::uint64_t count) {
  auto ks = co_await db->CreateKeyspace(name);
  KVCSD_CO_ASSERT_OK(ks);
  auto writer = ks->NewBulkWriter();
  for (std::uint64_t i = 0; i < count; ++i) {
    KVCSD_CO_ASSERT_OK(co_await writer.Add(MakeFixedKey(i), DetValue(i)));
  }
  KVCSD_CO_ASSERT_OK(co_await writer.Flush());
  KVCSD_CO_ASSERT_OK(co_await ks->Compact());
  KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
}

// A keyspace compacted while empty has an empty sketch (and an empty
// bloom filter): every query must answer cleanly from DRAM, never
// touching flash or the cache.
TEST(ReadPathTest, EmptyKeyspaceSketchAnswersWithoutIo) {
  ReadPathFixture f;
  testutil::RunSim(f.sim, [](ReadPathFixture* fx) -> sim::Task<void> {
    auto ks = co_await fx->db.CreateKeyspace("empty");
    KVCSD_CO_ASSERT_OK(ks);
    KVCSD_CO_ASSERT_OK(co_await ks->Compact());
    KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());

    auto got = co_await ks->Get(MakeFixedKey(1));
    KVCSD_CO_ASSERT(got.status().IsNotFound());
    std::vector<std::pair<std::string, std::string>> rows;
    KVCSD_CO_ASSERT_OK(co_await ks->Scan("", "\x7f", 0, &rows));
    KVCSD_CO_ASSERT(rows.empty());
  }(&f));
  EXPECT_EQ(f.Counter("device.read_cache.hits"), 0u);
  EXPECT_EQ(f.Counter("device.read_cache.misses"), 0u);
}

// A key below the first pivot short-circuits at the sketch — no index
// block is read whether the bloom filter is on or off, and with bloom on
// the negative is answered by the filter itself.
TEST(ReadPathTest, KeyBelowFirstPivotShortCircuits) {
  for (std::uint32_t bits : {std::uint32_t{0}, std::uint32_t{10}}) {
    DeviceConfig cfg = SmallDevice();
    cfg.bloom_bits_per_key = bits;
    ReadPathFixture f(cfg);
    testutil::RunSim(f.sim,
                     LoadAndCompact(&f.db, "lowkey", 500));
    const std::uint64_t misses_before = f.Counter("device.read_cache.misses");
    testutil::RunSim(f.sim, [](ReadPathFixture* fx) -> sim::Task<void> {
      auto ks = co_await fx->db.OpenKeyspace("lowkey");
      KVCSD_CO_ASSERT_OK(ks);
      // MakeFixedKey(0) (16 zero bytes) is the minimum loaded key; a
      // 4-byte prefix of it sorts strictly before every pivot.
      auto got = co_await ks->Get(std::string(4, '\0'));
      KVCSD_CO_ASSERT(got.status().IsNotFound());
    }(&f));
    // The lookup never reached flash: no cache miss, no cache fill.
    EXPECT_EQ(f.Counter("device.read_cache.misses"), misses_before) << bits;
    if (bits > 0) {
      EXPECT_GE(f.Counter("device.bloom.negative"), 1u);
    } else {
      EXPECT_EQ(f.Counter("device.bloom.negative"), 0u);
    }
  }
}

// Drop + re-create + re-compact under the same name: the cache is keyed
// by keyspace id (never reused) and invalidated on drop, so queries must
// see the new generation's data, never a stale cached block.
TEST(ReadPathTest, CacheInvalidatedAcrossDropAndRecreate) {
  ReadPathFixture f;
  testutil::RunSim(f.sim, [](ReadPathFixture* fx) -> sim::Task<void> {
    auto ks = co_await fx->db.CreateKeyspace("gen");
    KVCSD_CO_ASSERT_OK(ks);
    for (std::uint64_t i = 0; i < 400; ++i) {
      KVCSD_CO_ASSERT_OK(co_await ks->Put(MakeFixedKey(i), "gen1-" +
                                                               DetValue(i)));
    }
    KVCSD_CO_ASSERT_OK(co_await ks->Compact());
    KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
    // Warm the cache over the whole index.
    std::vector<std::pair<std::string, std::string>> rows;
    KVCSD_CO_ASSERT_OK(co_await ks->Scan("", "\x7f", 0, &rows));
    KVCSD_CO_ASSERT(rows.size() == 400);
    auto warm = co_await ks->Get(MakeFixedKey(7));
    KVCSD_CO_ASSERT_OK(warm);

    KVCSD_CO_ASSERT_OK(co_await fx->db.DropKeyspace("gen"));

    // Same name, different data: half the keys, different values.
    auto ks2 = co_await fx->db.CreateKeyspace("gen");
    KVCSD_CO_ASSERT_OK(ks2);
    for (std::uint64_t i = 0; i < 200; ++i) {
      KVCSD_CO_ASSERT_OK(
          co_await ks2->Put(MakeFixedKey(i), "gen2-" + DetValue(i)));
    }
    KVCSD_CO_ASSERT_OK(co_await ks2->Compact());
    KVCSD_CO_ASSERT_OK(co_await ks2->WaitCompaction());

    auto fresh = co_await ks2->Get(MakeFixedKey(7));
    KVCSD_CO_ASSERT_OK(fresh);
    KVCSD_CO_ASSERT(*fresh == "gen2-" + DetValue(7));
    auto gone = co_await ks2->Get(MakeFixedKey(300));  // only in gen 1
    KVCSD_CO_ASSERT(gone.status().IsNotFound());
    rows.clear();
    KVCSD_CO_ASSERT_OK(co_await ks2->Scan("", "\x7f", 0, &rows));
    KVCSD_CO_ASSERT(rows.size() == 200);
    for (const auto& [key, value] : rows) {
      KVCSD_CO_ASSERT(value.rfind("gen2-", 0) == 0);
    }
  }(&f));
  EXPECT_GT(f.Counter("device.read_cache.hits"), 0u);
}

// The bloom filter is persisted with the metadata snapshot at compaction
// commit: after a power cut + Recover on a fresh Device, a missing key is
// still answered by the filter (bloom.negative fires on the new device)
// and present keys still read back.
TEST(ReadPathTest, BloomFilterSurvivesPowerCycle) {
  PowerCycleFixture f;
  constexpr std::uint64_t kKeys = 600;
  testutil::RunSim(f.sim, LoadAndCompact(f.db.get(), "bf", kKeys));
  ASSERT_FALSE(f.dev()->keyspaces().Find("bf").value()->pidx_bloom.empty());

  f.faults.Crash();
  f.Restart();
  const std::uint64_t neg_before = f.Counter("device.bloom.negative");
  testutil::RunSim(f.sim, [](PowerCycleFixture* fx) -> sim::Task<void> {
    KVCSD_CO_ASSERT_OK(co_await fx->dev()->Recover());
    auto ks = co_await fx->db->OpenKeyspace("bf");
    KVCSD_CO_ASSERT_OK(ks);
    // The recovered keyspace is immediately queryable: COMPACTED state,
    // sketch AND bloom came back from the snapshot.
    for (std::uint64_t i = 0; i < kKeys; i += 97) {
      auto got = co_await ks->Get(MakeFixedKey(i));
      KVCSD_CO_ASSERT_OK(got);
      KVCSD_CO_ASSERT(*got == DetValue(i));
    }
    auto missing = co_await ks->Get(MakeFixedKey(kKeys + 12345));
    KVCSD_CO_ASSERT(missing.status().IsNotFound());
  }(&f));
  EXPECT_GT(f.Counter("device.bloom.negative"), neg_before);
}

// Injected read errors on the PIDX zone: a get whose index block is
// cached never touches that zone and succeeds; a get needing an uncached
// block surfaces the IoError — and the failed read is NOT inserted, so
// the next (healthy) attempt re-reads flash and succeeds.
TEST(ReadPathTest, InjectedReadErrorCachedVsUncached) {
  PowerCycleFixture f;
  // ~600 16-byte keys span several 4 KB PIDX blocks.
  constexpr std::uint64_t kKeys = 600;
  testutil::RunSim(f.sim, LoadAndCompact(f.db.get(), "flt", kKeys));

  Keyspace* ks_meta = f.dev()->keyspaces().Find("flt").value();
  ASSERT_GE(ks_meta->pidx_sketch.size(), 2u);
  const std::uint64_t zone_size = f.dev()->ssd().zone_size();
  const std::string key_a = MakeFixedKey(0);  // lives in sketch block 0
  // A key in the LAST block, so its block is distinct from block 0.
  const std::string key_b = MakeFixedKey(kKeys - 1);
  const std::uint64_t block_b_zone =
      ks_meta->pidx_sketch.back().block_addr / zone_size;

  testutil::RunSim(f.sim, [](PowerCycleFixture* fx, std::string ka,
                             std::string kb,
                             std::uint64_t bad_zone) -> sim::Task<void> {
    auto ks = co_await fx->db->OpenKeyspace("flt");
    KVCSD_CO_ASSERT_OK(ks);
    // Warm key A's index block only.
    KVCSD_CO_ASSERT_OK(co_await ks->Get(ka));

    sim::ErrorRule rule;
    rule.op = sim::FaultOp::kRead;
    rule.zone = static_cast<std::int64_t>(bad_zone);
    rule.times = 1;
    fx->faults.AddErrorRule(rule);

    // Cached block + value on a different (sorted-values) zone: the get
    // never reads the poisoned zone, the rule stays armed.
    const std::uint64_t hits = fx->Counter("device.read_cache.hits");
    KVCSD_CO_ASSERT_OK(co_await ks->Get(ka));
    KVCSD_CO_ASSERT(fx->Counter("device.read_cache.hits") > hits);

    // Uncached block in the poisoned zone: the read fails...
    auto broken = co_await ks->Get(kb);
    KVCSD_CO_ASSERT(broken.status().code() == StatusCode::kIoError);

    // ...and was not cached: the retry misses again (rule now exhausted)
    // and succeeds from a clean flash read.
    const std::uint64_t misses = fx->Counter("device.read_cache.misses");
    auto retried = co_await ks->Get(kb);
    KVCSD_CO_ASSERT_OK(retried);
    KVCSD_CO_ASSERT(fx->Counter("device.read_cache.misses") > misses);
  }(&f, key_a, key_b, block_b_zone));
}

// A cache sized below the index working set evicts in LRU order and
// never exceeds its byte budget.
TEST(ReadPathTest, TinyCacheEvictsWithinBudget) {
  DeviceConfig cfg = SmallDevice();
  cfg.index_cache_bytes = 2 * cfg.index_block_size;  // two blocks
  ReadPathFixture f(cfg);
  testutil::RunSim(f.sim, LoadAndCompact(&f.db, "tiny", 1200));
  ASSERT_GE(f.dev.keyspaces().Find("tiny").value()->pidx_sketch.size(), 4u);
  testutil::RunSim(f.sim, [](ReadPathFixture* fx) -> sim::Task<void> {
    auto ks = co_await fx->db.OpenKeyspace("tiny");
    KVCSD_CO_ASSERT_OK(ks);
    std::vector<std::pair<std::string, std::string>> rows;
    KVCSD_CO_ASSERT_OK(co_await ks->Scan("", "\x7f", 0, &rows));
    KVCSD_CO_ASSERT(rows.size() == 1200);
  }(&f));
  const IndexBlockCache& cache = f.dev.index_cache();
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_LE(cache.charge(), cache.capacity());
  // Two full 4 KB blocks fill the budget; a partial tail block can ride
  // along only after an eviction made room.
  EXPECT_LE(cache.entries(), 3u);

  // Disabled cache: zero capacity, every read is uncached, no fills.
  DeviceConfig off = SmallDevice();
  off.index_cache_enabled = false;
  ReadPathFixture g(off);
  testutil::RunSim(g.sim, LoadAndCompact(&g.db, "off", 300));
  testutil::RunSim(g.sim, [](ReadPathFixture* gx) -> sim::Task<void> {
    auto ks = co_await gx->db.OpenKeyspace("off");
    KVCSD_CO_ASSERT_OK(ks);
    KVCSD_CO_ASSERT_OK(co_await ks->Get(MakeFixedKey(5)));
    KVCSD_CO_ASSERT_OK(co_await ks->Get(MakeFixedKey(5)));
  }(&g));
  EXPECT_EQ(g.dev.index_cache().entries(), 0u);
  EXPECT_EQ(g.Counter("device.read_cache.hits"), 0u);
}

// GatherValues dedupes identical (addr, len) refs into one flash read
// and fans results back out to every requesting slot, in request order.
TEST(ReadPathTest, GatherValuesDedupesIdenticalRefs) {
  ReadPathFixture f;
  testutil::RunSim(f.sim, LoadAndCompact(&f.db, "gv", 400));
  Keyspace* ks = f.dev.keyspaces().Find("gv").value();
  ASSERT_FALSE(ks->pidx_sketch.empty());
  // Any readable flash bytes do: the PIDX block itself gives known
  // (addr, len) extents.
  const std::uint64_t base = ks->pidx_sketch[0].block_addr;

  const std::uint64_t dups_before = f.Counter("device.gather.dup_refs");
  const std::uint64_t ranges_before = f.Counter("device.gather.ranges");
  testutil::RunSim(f.sim, [](ReadPathFixture* fx,
                             std::uint64_t addr) -> sim::Task<void> {
    using Ref = DeviceTestPeer::ValueRef;
    std::vector<Ref> refs = {Ref{addr, 64}, Ref{addr + 128, 64},
                             Ref{addr, 64}, Ref{addr, 64}};
    auto got = co_await DeviceTestPeer::Gather(&fx->dev, refs);
    KVCSD_CO_ASSERT_OK(got);
    KVCSD_CO_ASSERT(got->size() == 4);
    KVCSD_CO_ASSERT((*got)[0] == (*got)[2]);
    KVCSD_CO_ASSERT((*got)[0] == (*got)[3]);

    // Reference: the same extents read one at a time.
    std::vector<Ref> first_only = {Ref{addr, 64}};
    std::vector<Ref> second_only = {Ref{addr + 128, 64}};
    auto one = co_await DeviceTestPeer::Gather(&fx->dev, first_only);
    auto two = co_await DeviceTestPeer::Gather(&fx->dev, second_only);
    KVCSD_CO_ASSERT_OK(one);
    KVCSD_CO_ASSERT_OK(two);
    KVCSD_CO_ASSERT((*got)[0] == (*one)[0]);
    KVCSD_CO_ASSERT((*got)[1] == (*two)[0]);
  }(&f, base));
  // Two duplicate refs deduped; the 64-byte gap coalesces the two
  // distinct extents of the first gather into a single range read, and
  // the two single-ref reference gathers add one range each.
  EXPECT_EQ(f.Counter("device.gather.dup_refs"), dups_before + 2);
  EXPECT_EQ(f.Counter("device.gather.ranges"), ranges_before + 3);
}

sim::Task<void> TiedQuery(client::Client* db, std::uint32_t limit,
                          std::vector<std::pair<std::string, std::string>>*
                              rows) {
  auto ks = co_await db->OpenKeyspace("tied");
  KVCSD_CO_ASSERT_OK(ks);
  rows->clear();
  KVCSD_CO_ASSERT_OK(
      co_await ks->QuerySecondaryRangeF32("tag", 1.0f, 1.0f, limit, rows));
}

// When `limit` lands inside a run of rows sharing one secondary key, the
// cut is deterministic: SIDX blocks are sorted by (skey, pkey), so the
// survivors are always the smallest primary keys of the tie — identical
// across cache, prefetch, and gather-fanout configurations.
TEST(ReadPathTest, TiedSecondaryKeysCutDeterministicallyAtLimit) {
  // 28-byte pad + f32, like the VPIC particle payload: keys 100..249
  // share tag 1.0, the rest carry distinct tags.
  auto value_for = [](std::uint64_t i) {
    const float tag = (i >= 100 && i < 250) ? 1.0f : 2.0f + (i % 7);
    std::string v(28, 'p');
    char buf[4];
    std::memcpy(buf, &tag, 4);
    v.append(buf, 4);
    return v;
  };

  std::vector<std::pair<std::string, std::string>> reference;
  DeviceConfig configs[3];
  configs[0] = SmallDevice();  // defaults: cache + bloom + prefetch + fanout 8
  configs[1] = SmallDevice();
  configs[1].gather_fanout = 1;
  configs[1].index_prefetch = false;
  configs[2] = SmallDevice();
  configs[2].index_cache_enabled = false;
  configs[2].bloom_bits_per_key = 0;

  for (int c = 0; c < 3; ++c) {
    ReadPathFixture f(configs[c]);
    testutil::RunSim(f.sim, [](ReadPathFixture* fx,
                               decltype(value_for)* mk) -> sim::Task<void> {
      auto ks = co_await fx->db.CreateKeyspace("tied");
      KVCSD_CO_ASSERT_OK(ks);
      auto writer = ks->NewBulkWriter();
      for (std::uint64_t i = 0; i < 400; ++i) {
        KVCSD_CO_ASSERT_OK(co_await writer.Add(MakeFixedKey(i), (*mk)(i)));
      }
      KVCSD_CO_ASSERT_OK(co_await writer.Flush());
      nvme::SecondaryIndexSpec spec;
      spec.name = "tag";
      spec.value_offset = 28;
      spec.value_length = 4;
      spec.type = nvme::SecondaryKeyType::kF32;
      std::vector<nvme::SecondaryIndexSpec> specs = {spec};
      KVCSD_CO_ASSERT_OK(co_await ks->CompactWithIndexes(specs));
      KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
    }(&f, &value_for));

    std::vector<std::pair<std::string, std::string>> rows;
    testutil::RunSim(f.sim, TiedQuery(&f.db, 40, &rows));
    ASSERT_EQ(rows.size(), 40u) << "config " << c;
    // The cut keeps the smallest pkeys of the tie: exactly 100..139.
    for (std::uint64_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].first, MakeFixedKey(100 + i)) << "config " << c;
      EXPECT_EQ(rows[i].second, value_for(100 + i)) << "config " << c;
    }
    if (c == 0) {
      reference = rows;
    } else {
      EXPECT_EQ(rows, reference) << "config " << c;
    }

    // An unlimited query returns the whole tie, still pkey-sorted.
    testutil::RunSim(f.sim, TiedQuery(&f.db, 0, &rows));
    EXPECT_EQ(rows.size(), 150u) << "config " << c;
  }
}

}  // namespace
}  // namespace kvcsd::device
