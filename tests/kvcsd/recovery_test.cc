// Crash-consistent recovery of the device path (DESIGN.md §8): power
// cycles via Device::Restart + Recover over the surviving ZNS bytes, with
// crashes injected at named points by sim::FaultInjector.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "../testutil.h"
#include "client/client.h"
#include "common/crc32c.h"
#include "common/keys.h"
#include "kvcsd/device.h"
#include "sim/fault.h"

namespace kvcsd::device {
namespace {

DeviceConfig SmallFaultyDevice() {
  DeviceConfig c;
  c.zns.zone_size = KiB(256);
  c.zns.num_zones = 64;
  c.zns.nand.channels = 8;
  c.dram_bytes = KiB(512);
  c.write_buffer_bytes = KiB(2);
  c.output_batch_bytes = KiB(16);
  return c;
}

// A device that can be power-cycled: the first incarnation runs on the
// first queue pair; each Restart() swaps in a fresh incarnation over the
// surviving flash bytes. The fixture's fault injector is always wired.
struct PowerCycleFixture {
  sim::Simulation sim;
  sim::FaultInjector faults{7};
  DeviceConfig cfg;
  std::vector<std::unique_ptr<nvme::QueueSet>> qps;
  std::vector<std::unique_ptr<Device>> devs;
  sim::CpuPool host{&sim, "host", 8};
  std::unique_ptr<client::Client> db;

  explicit PowerCycleFixture(DeviceConfig config = SmallFaultyDevice())
      : cfg(config) {
    cfg.zns.faults = &faults;
    faults.set_torn_tail_keep(0.5);
    qps.push_back(std::make_unique<nvme::QueueSet>(&sim, nvme::PcieConfig{}));
    devs.push_back(std::make_unique<Device>(&sim, cfg, qps.back().get()));
    devs.back()->Start();
    db = std::make_unique<client::Client>(qps.back().get(), &host,
                                          hostenv::CostModel::Host());
  }

  Device* dev() { return devs.back().get(); }

  // Simulated power cycle; the caller runs Recover() on the new device.
  void Restart() {
    qps.push_back(std::make_unique<nvme::QueueSet>(&sim, nvme::PcieConfig{}));
    devs.push_back(
        Device::Restart(&sim, cfg, qps.back().get(), *devs.back()));
    devs.back()->Start();
    db = std::make_unique<client::Client>(qps.back().get(), &host,
                                          hostenv::CostModel::Host());
  }
};

std::string DetValue(std::uint64_t i) { return "value-" + std::to_string(i); }

sim::Task<void> LoadAndSync(client::Client* db, const std::string& name,
                            std::uint64_t count) {
  auto ks = co_await db->CreateKeyspace(name);
  KVCSD_CO_ASSERT_OK(ks);
  for (std::uint64_t i = 0; i < count; ++i) {
    KVCSD_CO_ASSERT_OK(co_await ks->Put(MakeFixedKey(i), DetValue(i)));
  }
  KVCSD_CO_ASSERT_OK(co_await ks->Sync());
}

// Recover + open + (compact if needed) + read back `count` keys.
sim::Task<void> RecoverAndVerify(Device* dev, client::Client* db,
                                 const std::string& name,
                                 std::uint64_t count) {
  KVCSD_CO_ASSERT_OK(co_await dev->Recover());
  auto ks = co_await db->OpenKeyspace(name);
  KVCSD_CO_ASSERT_OK(ks);
  auto stat = co_await ks->GetStat();
  KVCSD_CO_ASSERT_OK(stat);
  KVCSD_CO_ASSERT(stat->num_kvs >= count);
  if (stat->state != "COMPACTED") {
    KVCSD_CO_ASSERT_OK(co_await ks->Compact());
    KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
  }
  for (std::uint64_t i = 0; i < count; i += count / 7 + 1) {
    auto got = co_await ks->Get(MakeFixedKey(i));
    KVCSD_CO_ASSERT_OK(got);
    KVCSD_CO_ASSERT(*got == DetValue(i));
  }
  std::vector<std::pair<std::string, std::string>> rows;
  KVCSD_CO_ASSERT_OK(co_await ks->Scan("", "\x7f", 0, &rows));
  KVCSD_CO_ASSERT(rows.size() >= count);
}

TEST(RecoveryTest, SyncedDataSurvivesPowerCut) {
  PowerCycleFixture f;
  constexpr std::uint64_t kKeys = 300;
  testutil::RunSim(f.sim, LoadAndSync(f.db.get(), "pc", kKeys));

  f.faults.Crash();  // lights out, mid-nothing: all synced data intact
  f.Restart();
  testutil::RunSim(f.sim,
                   RecoverAndVerify(f.dev(), f.db.get(), "pc", kKeys));
}

// A crash between the sibling-zone reset and the snapshot append must not
// lose the keyspace table: the newest intact snapshot lives in the OTHER
// metadata zone, which the ping-pong never resets.
TEST(RecoveryTest, PingPongSurvivesCrashBetweenResetAndAppend) {
  DeviceConfig cfg = SmallFaultyDevice();
  cfg.zns.zone_size = KiB(4);  // tiny metadata zones: frequent ping-pong
  cfg.write_buffer_bytes = KiB(1);
  PowerCycleFixture f(cfg);

  f.faults.ArmCrashAtPoint("meta.after_reset", 1);
  testutil::RunSim(
      f.sim,
      [](client::Client* db, sim::FaultInjector* faults) -> sim::Task<void> {
        auto ks = co_await db->CreateKeyspace("pp");
        KVCSD_CO_ASSERT_OK(ks);
        // Sync repeatedly; each sync persists a snapshot, filling the
        // 4 KiB metadata zone until the ping-pong (and the armed crash).
        for (std::uint64_t i = 0; i < 200 && !faults->crashed(); ++i) {
          Status put = co_await ks->Put(MakeFixedKey(i), DetValue(i));
          if (!put.ok()) break;
          Status sync = co_await ks->Sync();
          if (!sync.ok()) break;
        }
      }(f.db.get(), &f.faults));
  ASSERT_TRUE(f.faults.crashed());
  ASSERT_EQ(f.faults.crash_point(), "meta.after_reset");

  f.Restart();
  testutil::RunSim(
      f.sim, [](Device* dev, client::Client* db) -> sim::Task<void> {
        KVCSD_CO_ASSERT_OK(co_await dev->Recover());
        // The table survived in the sibling zone.
        auto ks = co_await db->OpenKeyspace("pp");
        KVCSD_CO_ASSERT_OK(ks);
        auto stat = co_await ks->GetStat();
        KVCSD_CO_ASSERT_OK(stat);
        KVCSD_CO_ASSERT(stat->num_kvs >= 1);
        // And the device persists cleanly again after recovery.
        KVCSD_CO_ASSERT_OK(co_await ks->Sync());
      }(f.dev(), f.db.get()));
}

// A power cut that tears the most recent metadata snapshot mid-append:
// recovery must fall back to the previous intact snapshot, and the next
// persist must go to the sibling zone (never appending after the torn
// tail), so a SECOND power cycle still recovers.
TEST(RecoveryTest, TornFinalSnapshotIgnoredAcrossTwoPowerCycles) {
  PowerCycleFixture f;
  constexpr std::uint64_t kKeys = 120;
  testutil::RunSim(f.sim, LoadAndSync(f.db.get(), "torn", kKeys));
  // A further sync whose snapshot append is interrupted mid-write: the
  // crash fires before the commit barrier, so the torn-tail hook
  // truncates this exact snapshot.
  testutil::RunSim(
      f.sim,
      [](client::Client* db, sim::FaultInjector* faults) -> sim::Task<void> {
        auto ks = co_await db->OpenKeyspace("torn");
        KVCSD_CO_ASSERT_OK(ks);
        for (std::uint64_t i = kKeys; i < kKeys + 40; ++i) {
          KVCSD_CO_ASSERT_OK(co_await ks->Put(MakeFixedKey(i), DetValue(i)));
        }
        faults->ArmCrashAtPoint("meta.after_append",
                                faults->hit_count("meta.after_append") + 1);
        Status sync = co_await ks->Sync();
        KVCSD_CO_ASSERT(!sync.ok());
        KVCSD_CO_ASSERT(faults->crashed());
      }(f.db.get(), &f.faults));
  ASSERT_EQ(f.faults.crash_point(), "meta.after_append");

  f.Restart();
  testutil::RunSim(f.sim,
                   RecoverAndVerify(f.dev(), f.db.get(), "torn", kKeys));

  // Recover() persisted again (into the sibling zone). A second cycle
  // must land on that snapshot, not on the torn tail.
  f.Restart();
  testutil::RunSim(f.sim,
                   RecoverAndVerify(f.dev(), f.db.get(), "torn", kKeys));
}

// A crash inside a log flush leaves a torn KLOG frame at the tail of a
// zone. Recovery must drop the fragment, truncate it off the flash (so
// later appends never follow garbage), and keep every intact record.
TEST(RecoveryTest, TornKlogTailTruncatedOnRecovery) {
  PowerCycleFixture f;
  constexpr std::uint64_t kAcked = 100;
  testutil::RunSim(f.sim, LoadAndSync(f.db.get(), "tk", kAcked));
  testutil::RunSim(
      f.sim,
      [](client::Client* db, sim::FaultInjector* faults) -> sim::Task<void> {
        auto ks = co_await db->OpenKeyspace("tk");
        KVCSD_CO_ASSERT_OK(ks);
        // Crash inside the NEXT flush, right after the KLOG append: the
        // torn-tail hook then truncates that framed record mid-write.
        faults->ArmCrashAtPoint(
            "flush.after_klog",
            faults->hit_count("flush.after_klog") + 1);
        for (std::uint64_t i = kAcked; i < kAcked + 200; ++i) {
          Status put = co_await ks->Put(MakeFixedKey(i), DetValue(i));
          if (!put.ok() || faults->crashed()) break;
          if ((i - kAcked) % 16 == 15) {
            Status sync = co_await ks->Sync();
            if (!sync.ok() || faults->crashed()) break;
          }
        }
      }(f.db.get(), &f.faults));
  ASSERT_TRUE(f.faults.crashed());
  ASSERT_EQ(f.faults.crash_point(), "flush.after_klog");

  f.Restart();
  testutil::RunSim(
      f.sim, [](Device* dev, client::Client* db) -> sim::Task<void> {
        KVCSD_CO_ASSERT_OK(co_await dev->Recover());
        auto ks = co_await db->OpenKeyspace("tk");
        KVCSD_CO_ASSERT_OK(ks);
        auto stat = co_await ks->GetStat();
        KVCSD_CO_ASSERT_OK(stat);
        // Every acknowledged record replayed; the torn frame dropped.
        KVCSD_CO_ASSERT(stat->num_kvs >= kAcked);
        // The zone is clean after truncation: new writes and a full
        // compaction parse the whole chain without corruption.
        for (std::uint64_t i = 500; i < 520; ++i) {
          KVCSD_CO_ASSERT_OK(co_await ks->Put(MakeFixedKey(i), DetValue(i)));
        }
        KVCSD_CO_ASSERT_OK(co_await ks->Sync());
        KVCSD_CO_ASSERT_OK(co_await ks->Compact());
        KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
        for (std::uint64_t i = 0; i < kAcked; i += 13) {
          auto got = co_await ks->Get(MakeFixedKey(i));
          KVCSD_CO_ASSERT_OK(got);
          KVCSD_CO_ASSERT(*got == DetValue(i));
        }
      }(f.dev(), f.db.get()));
}

std::uint32_t Fingerprint(
    const std::vector<std::pair<std::string, std::string>>& rows) {
  std::uint32_t crc = 0;
  for (const auto& [key, value] : rows) {
    crc = crc32c::Extend(crc, key.data(), key.size());
    crc = crc32c::Extend(crc, value.data(), value.size());
  }
  return crc;
}

sim::Task<void> CompactAndFingerprint(client::Client* db,
                                      const std::string& name,
                                      std::uint32_t* out) {
  auto ks = co_await db->OpenKeyspace(name);
  KVCSD_CO_ASSERT_OK(ks);
  auto stat = co_await ks->GetStat();
  KVCSD_CO_ASSERT_OK(stat);
  if (stat->state != "COMPACTED") {
    KVCSD_CO_ASSERT_OK(co_await ks->Compact());
    KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
  }
  std::vector<std::pair<std::string, std::string>> rows;
  KVCSD_CO_ASSERT_OK(co_await ks->Scan("", "\x7f", 0, &rows));
  *out = Fingerprint(rows);
}

// Crash mid-compaction, restart, recover, re-compact: the result must be
// byte-identical (crc32c over the full scan) to a run that never crashed.
TEST(RecoveryTest, MidCompactionRestartIsDeterministic) {
  constexpr std::uint64_t kKeys = 600;

  // Reference: the same load, compacted without any crash.
  std::uint32_t reference = 0;
  {
    PowerCycleFixture ref;
    testutil::RunSim(ref.sim, LoadAndSync(ref.db.get(), "det", kKeys));
    testutil::RunSim(ref.sim,
                     CompactAndFingerprint(ref.db.get(), "det", &reference));
  }
  ASSERT_NE(reference, 0u);

  // Crashed run: power dies after phase 1 spilled its sorted runs.
  PowerCycleFixture f;
  testutil::RunSim(f.sim, LoadAndSync(f.db.get(), "det", kKeys));
  f.faults.ArmCrashAtPoint("compact.after_phase1", 1);
  testutil::RunSim(
      f.sim,
      [](client::Client* db, sim::FaultInjector* faults) -> sim::Task<void> {
        auto ks = co_await db->OpenKeyspace("det");
        KVCSD_CO_ASSERT_OK(ks);
        Status s = co_await ks->Compact();
        if (s.ok()) (void)co_await ks->WaitCompaction();
        KVCSD_CO_ASSERT(faults->crashed());
      }(f.db.get(), &f.faults));

  f.Restart();
  std::uint32_t recovered = 0;
  testutil::RunSim(f.sim, [](Device* dev) -> sim::Task<void> {
    KVCSD_CO_ASSERT_OK(co_await dev->Recover());
  }(f.dev()));
  testutil::RunSim(f.sim,
                   CompactAndFingerprint(f.db.get(), "det", &recovered));
  EXPECT_EQ(recovered, reference);
}

// A transient flush failure is surfaced by exactly one Sync, then
// cleared; SyncWithRetry rides over it.
TEST(RecoveryTest, FlushErrorSurfacesOnceThenClears) {
  PowerCycleFixture f;
  testutil::RunSim(
      f.sim,
      [](client::Client* db, sim::FaultInjector* faults) -> sim::Task<void> {
        auto ks = co_await db->CreateKeyspace("sticky");
        KVCSD_CO_ASSERT_OK(ks);
        KVCSD_CO_ASSERT_OK(co_await ks->Put(MakeFixedKey(1), "v1"));
        // One injected append failure: the flush kicked off by the next
        // Sync fails and latches the error.
        sim::ErrorRule rule;
        rule.op = sim::FaultOp::kAppend;
        rule.times = 1;
        faults->AddErrorRule(rule);
        Status first = co_await ks->Sync();
        KVCSD_CO_ASSERT(!first.ok());
        KVCSD_CO_ASSERT(first.IsRetryable());
        // Surfaced once; a later sync with healthy flushes succeeds
        // instead of failing forever on the stale latched error.
        KVCSD_CO_ASSERT_OK(co_await ks->Put(MakeFixedKey(2), "v2"));
        KVCSD_CO_ASSERT_OK(co_await ks->Sync());

        // SyncWithRetry hides the transient failure entirely.
        sim::ErrorRule again;
        again.op = sim::FaultOp::kAppend;
        again.times = 1;
        faults->AddErrorRule(again);
        KVCSD_CO_ASSERT_OK(co_await ks->Put(MakeFixedKey(3), "v3"));
        KVCSD_CO_ASSERT_OK(co_await ks->SyncWithRetry(3));
      }(f.db.get(), &f.faults));
}

// A flush batch that fails on an injected I/O error is re-queued into
// the write buffer: the failed Sync surfaces the error, the retried Sync
// re-flushes the SAME data, and an OK from the retry is a real
// durability promise — the batch survives an immediate power cut.
// (Without the re-queue, the retry would persist an empty buffer, return
// OK, and the batch would be silently gone.)
TEST(RecoveryTest, FailedFlushBatchSurvivesRetriedSync) {
  PowerCycleFixture f;
  constexpr std::uint64_t kKeys = 40;
  testutil::RunSim(
      f.sim,
      [](client::Client* db, sim::FaultInjector* faults) -> sim::Task<void> {
        auto ks = co_await db->CreateKeyspace("requeue");
        KVCSD_CO_ASSERT_OK(ks);
        for (std::uint64_t i = 0; i < kKeys; ++i) {
          KVCSD_CO_ASSERT_OK(co_await ks->Put(MakeFixedKey(i), DetValue(i)));
        }
        sim::ErrorRule rule;
        rule.op = sim::FaultOp::kAppend;
        rule.times = 1;
        faults->AddErrorRule(rule);
        Status first = co_await ks->Sync();
        KVCSD_CO_ASSERT(!first.ok());
        KVCSD_CO_ASSERT(first.IsRetryable());
        KVCSD_CO_ASSERT_OK(co_await ks->Sync());
      }(f.db.get(), &f.faults));

  // The retried Sync returned OK: everything must survive lights-out.
  f.faults.Crash();
  f.Restart();
  testutil::RunSim(f.sim,
                   RecoverAndVerify(f.dev(), f.db.get(), "requeue", kKeys));
}

// A drop acknowledged while the keyspace was compacting (deferred
// deletion) must stay dropped across a crash that kills the compaction
// before the deferred FinishDrop ever runs — the tombstone persisted
// before the ack is what recovery completes the drop from.
TEST(RecoveryTest, AckedDeferredDropStaysDroppedAcrossCrash) {
  PowerCycleFixture f;
  constexpr std::uint64_t kKeys = 600;
  testutil::RunSim(f.sim, LoadAndSync(f.db.get(), "dropped", kKeys));

  f.faults.ArmCrashAtPoint("compact.after_phase1", 1);
  testutil::RunSim(
      f.sim,
      [](client::Client* db, sim::FaultInjector* faults) -> sim::Task<void> {
        auto ks = co_await db->OpenKeyspace("dropped");
        KVCSD_CO_ASSERT_OK(ks);
        KVCSD_CO_ASSERT_OK(co_await ks->Compact());
        // COMPACTING, so the drop defers — but it is acknowledged, and
        // the ack lands before the armed crash kills the compaction.
        Status dropped = co_await db->DropKeyspace("dropped");
        KVCSD_CO_ASSERT_OK(dropped);
        KVCSD_CO_ASSERT(!faults->crashed());
        (void)co_await ks->WaitCompaction();
        KVCSD_CO_ASSERT(faults->crashed());
      }(f.db.get(), &f.faults));
  ASSERT_EQ(f.faults.crash_point(), "compact.after_phase1");

  f.Restart();
  testutil::RunSim(
      f.sim, [](Device* dev, client::Client* db) -> sim::Task<void> {
        KVCSD_CO_ASSERT_OK(co_await dev->Recover());
        // The acknowledged drop must not resurface.
        auto gone = co_await db->OpenKeyspace("dropped");
        KVCSD_CO_ASSERT(gone.status().code() == StatusCode::kNotFound);
        // And the device is fully usable: the dropped keyspace's zones
        // were reclaimed, so a fresh keyspace can take their place.
        auto ks = co_await db->CreateKeyspace("fresh");
        KVCSD_CO_ASSERT_OK(ks);
        KVCSD_CO_ASSERT_OK(co_await ks->Put(MakeFixedKey(1), "v"));
        KVCSD_CO_ASSERT_OK(co_await ks->Sync());
      }(f.dev(), f.db.get()));
}

// Dropping a keyspace while its flushes and compaction are still in
// flight must defer, not free the Keyspace under a running coroutine
// (ASan in CI turns a regression here into a hard failure).
TEST(RecoveryTest, DropDuringInflightTrafficDefers) {
  PowerCycleFixture f;
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = co_await db->CreateKeyspace("dropme");
    KVCSD_CO_ASSERT_OK(ks);
    // Enough data that detached FlushIo batches are still in flight
    // when the drop lands.
    for (std::uint64_t i = 0; i < 200; ++i) {
      KVCSD_CO_ASSERT_OK(co_await ks->Put(MakeFixedKey(i), DetValue(i)));
    }
    KVCSD_CO_ASSERT_OK(co_await db->DropKeyspace("dropme"));
    auto gone = co_await db->OpenKeyspace("dropme");
    KVCSD_CO_ASSERT(gone.status().code() == StatusCode::kNotFound);

    // And through the COMPACTING window: the drop defers to the end of
    // the compaction, then completes.
    auto ks2 = co_await db->CreateKeyspace("dropme2");
    KVCSD_CO_ASSERT_OK(ks2);
    for (std::uint64_t i = 0; i < 200; ++i) {
      KVCSD_CO_ASSERT_OK(co_await ks2->Put(MakeFixedKey(i), DetValue(i)));
    }
    KVCSD_CO_ASSERT_OK(co_await ks2->Compact());
    KVCSD_CO_ASSERT_OK(co_await db->DropKeyspace("dropme2"));
    KVCSD_CO_ASSERT_OK(co_await ks2->WaitCompaction());
    auto gone2 = co_await db->OpenKeyspace("dropme2");
    KVCSD_CO_ASSERT(gone2.status().code() == StatusCode::kNotFound);
  }(f.db.get()));
}

// Unknown opcodes complete with Unimplemented, never silent OK — even
// when they carry an invalid keyspace id (Unimplemented wins over
// NotFound). A KNOWN keyspace-scoped opcode with a bad id is NotFound.
TEST(RecoveryTest, UnknownOpcodeRejected) {
  PowerCycleFixture f;
  testutil::RunSim(
      f.sim,
      [](client::Client* db, nvme::QueueSet* qp) -> sim::Task<void> {
        auto ks = co_await db->CreateKeyspace("ops");
        KVCSD_CO_ASSERT_OK(ks);

        nvme::Command unknown;
        unknown.opcode = static_cast<nvme::Opcode>(0xee);
        unknown.keyspace_id = ks->id();
        auto c1 = co_await qp->Submit(std::move(unknown));
        KVCSD_CO_ASSERT(c1.status.code() == StatusCode::kUnimplemented);

        // kKvDelete is a real opcode now: a blind tombstone write, Ok even
        // for a key that was never put.
        nvme::Command del;
        del.opcode = nvme::Opcode::kKvDelete;
        del.keyspace_id = ks->id();
        del.key = "never-written";
        auto c2 = co_await qp->Submit(std::move(del));
        KVCSD_CO_ASSERT_OK(c2.status);

        nvme::Command bad_both;
        bad_both.opcode = static_cast<nvme::Opcode>(0xee);
        bad_both.keyspace_id = 424242;
        auto c3 = co_await qp->Submit(std::move(bad_both));
        KVCSD_CO_ASSERT(c3.status.code() == StatusCode::kUnimplemented);

        nvme::Command bad_id;
        bad_id.opcode = nvme::Opcode::kSync;
        bad_id.keyspace_id = 424242;
        auto c4 = co_await qp->Submit(std::move(bad_id));
        KVCSD_CO_ASSERT(c4.status.code() == StatusCode::kNotFound);
      }(f.db.get(), f.qps.back().get()));
}

// An undersized index block (corrupt on-flash metadata) surfaces as
// Corruption instead of an out-of-bounds read of the block header.
TEST(RecoveryTest, CorruptIndexBlockReturnsCorruption) {
  PowerCycleFixture f;
  constexpr std::uint64_t kKeys = 200;
  testutil::RunSim(f.sim, LoadAndSync(f.db.get(), "corrupt", kKeys));
  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = co_await db->OpenKeyspace("corrupt");
    KVCSD_CO_ASSERT_OK(ks);
    KVCSD_CO_ASSERT_OK(co_await ks->Compact());
    KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
  }(f.db.get()));

  auto corrupt = f.dev()->keyspaces().Find("corrupt");
  ASSERT_TRUE(corrupt.ok());
  ASSERT_FALSE((*corrupt)->pidx_sketch.empty());
  (*corrupt)->pidx_sketch[0].block_len = 1;  // undersized: header is 2 bytes

  testutil::RunSim(f.sim, [](client::Client* db) -> sim::Task<void> {
    auto ks = co_await db->OpenKeyspace("corrupt");
    KVCSD_CO_ASSERT_OK(ks);
    auto got = co_await ks->Get(MakeFixedKey(0));
    KVCSD_CO_ASSERT(got.status().code() == StatusCode::kCorruption);
    std::vector<std::pair<std::string, std::string>> rows;
    Status scan = co_await ks->Scan("", "\x7f", 0, &rows);
    KVCSD_CO_ASSERT(scan.code() == StatusCode::kCorruption);
  }(f.db.get()));
}

}  // namespace
}  // namespace kvcsd::device
