#include "kvcsd/zone_manager.h"

#include <gtest/gtest.h>

#include <set>

#include "../testutil.h"

namespace kvcsd::device {
namespace {

struct ZmFixture {
  sim::Simulation sim;
  storage::ZnsSsd ssd{&sim, MakeConfig()};
  ZoneManager zm{&ssd, ZoneManagerConfig{}};

  static storage::ZnsConfig MakeConfig() {
    storage::ZnsConfig c;
    c.zone_size = KiB(64);
    c.num_zones = 64;
    c.nand.channels = 8;
    return c;
  }

  std::span<const std::byte> Bytes(const std::string& s) {
    return std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(s.data()), s.size());
  }
};

TEST(ZoneManagerTest, AllocateClaimsZonesFromPool) {
  ZmFixture f;
  const std::size_t before = f.zm.free_zones();
  auto cluster = f.zm.AllocateCluster(ZoneType::kKlog);
  ASSERT_TRUE(cluster.ok());
  EXPECT_EQ(f.zm.free_zones(), before - 4);
  EXPECT_EQ(f.zm.cluster_zones(*cluster).size(), 4u);
  EXPECT_EQ(f.zm.cluster_type(*cluster), ZoneType::kKlog);
  // Reserved metadata zone never appears in clusters.
  for (std::uint32_t z : f.zm.cluster_zones(*cluster)) EXPECT_NE(z, 0u);
}

TEST(ZoneManagerTest, ExhaustionReported) {
  ZmFixture f;
  // 63 allocatable zones / 4 per cluster = 15 clusters.
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(f.zm.AllocateCluster(ZoneType::kVlog).ok()) << i;
  }
  auto last = f.zm.AllocateCluster(ZoneType::kVlog);
  EXPECT_EQ(last.status().code(), StatusCode::kOutOfSpace);
}

TEST(ZoneManagerTest, AppendRotatesAcrossZones) {
  ZmFixture f;
  auto cluster = f.zm.AllocateCluster(ZoneType::kKlog).value();
  std::string record(KiB(1), 'r');
  std::set<std::uint32_t> zones_touched;
  for (int i = 0; i < 8; ++i) {
    auto addr = testutil::RunSim(f.sim, f.zm.Append(cluster,
                                                    f.Bytes(record)));
    ASSERT_TRUE(addr.ok());
    zones_touched.insert(
        static_cast<std::uint32_t>(*addr / f.ssd.zone_size()));
  }
  // 8 appends over a 4-zone cluster touch all 4 zones (round-robin).
  EXPECT_EQ(zones_touched.size(), 4u);
}

TEST(ZoneManagerTest, AppendDataReadableAtReturnedAddress) {
  ZmFixture f;
  auto cluster = f.zm.AllocateCluster(ZoneType::kVlog).value();
  const std::string record = "payload-123456";
  auto addr = testutil::RunSim(f.sim, f.zm.Append(cluster, f.Bytes(record)));
  ASSERT_TRUE(addr.ok());
  std::string back(record.size(), '\0');
  ASSERT_TRUE(
      testutil::RunSim(
          f.sim, f.zm.Read(*addr, std::span<std::byte>(
                                      reinterpret_cast<std::byte*>(
                                          back.data()),
                                      back.size())))
          .ok());
  EXPECT_EQ(back, record);
}

TEST(ZoneManagerTest, ClusterFullWhenAllZonesFull) {
  ZmFixture f;
  auto cluster = f.zm.AllocateCluster(ZoneType::kKlog).value();
  std::string big(KiB(64), 'x');  // exactly one zone
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        testutil::RunSim(f.sim, f.zm.Append(cluster, f.Bytes(big))).ok());
  }
  auto overflow = testutil::RunSim(f.sim, f.zm.Append(cluster, f.Bytes(big)));
  EXPECT_EQ(overflow.status().code(), StatusCode::kOutOfSpace);
}

TEST(ZoneManagerTest, ReleaseResetsZonesAndRefillsPool) {
  ZmFixture f;
  auto cluster = f.zm.AllocateCluster(ZoneType::kTemp).value();
  std::string record(KiB(4), 't');
  ASSERT_TRUE(
      testutil::RunSim(f.sim, f.zm.Append(cluster, f.Bytes(record))).ok());
  const std::size_t free_before = f.zm.free_zones();
  ASSERT_TRUE(testutil::RunSim(f.sim, f.zm.ReleaseCluster(cluster)).ok());
  EXPECT_EQ(f.zm.free_zones(), free_before + 4);
  EXPECT_EQ(f.zm.live_clusters(), 0u);
  EXPECT_GE(f.ssd.total_resets(), 4u);
}

TEST(ZoneManagerTest, RecordLargerThanZoneRejected) {
  ZmFixture f;
  auto cluster = f.zm.AllocateCluster(ZoneType::kVlog).value();
  std::string huge(KiB(65), 'h');
  auto r = testutil::RunSim(f.sim, f.zm.Append(cluster, f.Bytes(huge)));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ZoneManagerTest, OpsOnUnknownClusterFail) {
  ZmFixture f;
  auto r = testutil::RunSim(f.sim, f.zm.Append(999, f.Bytes("x")));
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  auto s = testutil::RunSim(f.sim, f.zm.ReleaseCluster(999));
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(ZoneManagerTest, ClusterBytesTracksPayload) {
  ZmFixture f;
  auto cluster = f.zm.AllocateCluster(ZoneType::kKlog).value();
  std::string record(1000, 'b');
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        testutil::RunSim(f.sim, f.zm.Append(cluster, f.Bytes(record))).ok());
  }
  EXPECT_EQ(f.zm.ClusterBytes(cluster), 5000u);
}

}  // namespace
}  // namespace kvcsd::device
