#include "common/bloom.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/keys.h"

namespace kvcsd {
namespace {

std::string BuildFilter(int n, int bits_per_key = 10) {
  BloomFilterBuilder builder(bits_per_key);
  for (int i = 0; i < n; ++i) {
    builder.AddKey(MakeFixedKey(static_cast<std::uint64_t>(i)));
  }
  return builder.Finish();
}

TEST(BloomTest, NoFalseNegatives) {
  for (int n : {1, 10, 100, 1000, 10000}) {
    std::string filter = BuildFilter(n);
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(BloomFilterMayContain(
          Slice(filter), MakeFixedKey(static_cast<std::uint64_t>(i))))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(BloomTest, FalsePositiveRateIsReasonable) {
  const int n = 10000;
  std::string filter = BuildFilter(n);
  int false_positives = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; ++i) {
    if (BloomFilterMayContain(
            Slice(filter),
            MakeFixedKey(static_cast<std::uint64_t>(1000000 + i)))) {
      ++false_positives;
    }
  }
  // 10 bits/key gives ~1% theoretical; accept up to 3%.
  EXPECT_LT(false_positives, probes * 3 / 100)
      << "fp rate " << 100.0 * false_positives / probes << "%";
}

TEST(BloomTest, EmptyFilterIsPermissive) {
  BloomFilterBuilder builder;
  std::string filter = builder.Finish();
  // No keys added: tiny filter; must not crash and any answer is legal,
  // but an all-zero filter should reject.
  EXPECT_FALSE(BloomFilterMayContain(Slice(filter), "anything"));
}

TEST(BloomTest, DegenerateFilterSlicesAreSafe) {
  EXPECT_TRUE(BloomFilterMayContain(Slice(""), "k"));
  EXPECT_TRUE(BloomFilterMayContain(Slice("x"), "k"));
}

TEST(BloomTest, MoreBitsFewerFalsePositives) {
  const int n = 5000;
  auto fp_rate = [n](int bits) {
    std::string filter = BuildFilter(n, bits);
    int fp = 0;
    for (int i = 0; i < 5000; ++i) {
      fp += BloomFilterMayContain(
          Slice(filter), MakeFixedKey(static_cast<std::uint64_t>(900000 + i)));
    }
    return fp;
  };
  EXPECT_GT(fp_rate(4), fp_rate(16));
}

TEST(BloomTest, HashSpreadsKeys) {
  // Adjacent keys should not collide systematically.
  std::uint32_t h0 = BloomHash(MakeFixedKey(0));
  std::uint32_t h1 = BloomHash(MakeFixedKey(1));
  std::uint32_t h2 = BloomHash(MakeFixedKey(2));
  EXPECT_NE(h0, h1);
  EXPECT_NE(h1, h2);
}

TEST(BloomTest, VariableLengthKeys) {
  BloomFilterBuilder builder;
  std::vector<std::string> keys = {"", "a", "ab", "abc", "abcd",
                                   std::string(1000, 'z')};
  for (const auto& k : keys) builder.AddKey(k);
  std::string filter = builder.Finish();
  for (const auto& k : keys) {
    EXPECT_TRUE(BloomFilterMayContain(Slice(filter), k));
  }
}

}  // namespace
}  // namespace kvcsd
