#include "lsm/db.h"

#include <gtest/gtest.h>

#include <map>

#include "../testutil.h"
#include "common/keys.h"
#include "common/random.h"

namespace kvcsd::lsm {
namespace {

struct DbFixture {
  sim::Simulation sim;
  sim::CpuPool cpu{&sim, "host", 8};
  storage::BlockSsd ssd{&sim, storage::BlockSsdConfig{}};
  hostenv::PageCache page_cache{MiB(256)};
  hostenv::Fs fs{&sim, &cpu, &ssd, &page_cache, hostenv::CostModel::Host()};
  LsmEnv env{&sim, &fs, &cpu, hostenv::CostModel::Host(), &sim.stats()};
  BlockCache block_cache{MiB(32)};

  DbOptions SmallOptions(CompactionMode mode = CompactionMode::kAuto) {
    DbOptions o;
    o.memtable_size = KiB(64);  // small so flushes/compactions trigger fast
    o.level_base_size = KiB(512);
    o.max_file_size = KiB(128);
    o.compaction_mode = mode;
    return o;
  }

  std::unique_ptr<Db> OpenDb(DbOptions o) {
    auto db = testutil::RunSim(sim, Db::Open(&env, &block_cache, o));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(*db);
  }

  void CloseDb(Db* db) {
    auto s = testutil::RunSim(sim, db->Close());
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
};

TEST(DbTest, PutGetSmoke) {
  DbFixture f;
  auto db = f.OpenDb(f.SmallOptions());
  testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
    EXPECT_TRUE((co_await d->Put("key1", "value1")).ok());
    EXPECT_TRUE((co_await d->Put("key2", "value2")).ok());
    std::string v;
    EXPECT_TRUE((co_await d->Get("key1", &v)).ok());
    EXPECT_EQ(v, "value1");
    EXPECT_TRUE((co_await d->Get("missing", &v)).IsNotFound());
  }(db.get()));
  f.CloseDb(db.get());
}

TEST(DbTest, OverwriteAndDelete) {
  DbFixture f;
  auto db = f.OpenDb(f.SmallOptions());
  testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
    EXPECT_TRUE((co_await d->Put("k", "v1")).ok());
    EXPECT_TRUE((co_await d->Put("k", "v2")).ok());
    std::string v;
    EXPECT_TRUE((co_await d->Get("k", &v)).ok());
    EXPECT_EQ(v, "v2");
    EXPECT_TRUE((co_await d->Delete("k")).ok());
    EXPECT_TRUE((co_await d->Get("k", &v)).IsNotFound());
  }(db.get()));
  f.CloseDb(db.get());
}

TEST(DbTest, DataSurvivesFlushToL0) {
  DbFixture f;
  auto db = f.OpenDb(f.SmallOptions(CompactionMode::kNone));
  testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_TRUE((co_await d->Put(MakeFixedKey(
                                       static_cast<std::uint64_t>(i)),
                                   "value-" + std::to_string(i)))
                      .ok());
    }
    EXPECT_TRUE((co_await d->Flush()).ok());
    co_await d->WaitForIdle();
  }(db.get()));
  EXPECT_GT(db->NumLevelFiles(0), 0);
  testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
    std::string v;
    for (int i : {0, 999, 1999}) {
      EXPECT_TRUE((co_await d->Get(
                       MakeFixedKey(static_cast<std::uint64_t>(i)), &v))
                      .ok())
          << i;
      EXPECT_EQ(v, "value-" + std::to_string(i));
    }
  }(db.get()));
  f.CloseDb(db.get());
}

TEST(DbTest, AutoCompactionReducesL0AndPreservesData) {
  DbFixture f;
  auto db = f.OpenDb(f.SmallOptions(CompactionMode::kAuto));
  constexpr int kKeys = 20000;
  testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
    Rng rng(1);
    for (int i = 0; i < kKeys; ++i) {
      EXPECT_TRUE((co_await d->Put(MakeFixedKey(
                                       static_cast<std::uint64_t>(i)),
                                   "value-" + std::to_string(i)))
                      .ok());
    }
    EXPECT_TRUE((co_await d->Flush()).ok());
    co_await d->WaitForIdle();
  }(db.get()));
  EXPECT_GT(db->stats().compactions, 0u);
  EXPECT_LT(db->NumLevelFiles(0), 4);
  EXPECT_GT(db->stats().compact_bytes_written, 0u);

  // Spot-check data after compaction moved it down the tree.
  testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
    Rng rng(2);
    std::string v;
    for (int probe = 0; probe < 200; ++probe) {
      const auto i = rng.Uniform(kKeys);
      EXPECT_TRUE((co_await d->Get(MakeFixedKey(i), &v)).ok()) << i;
      EXPECT_EQ(v, "value-" + std::to_string(i));
    }
  }(db.get()));
  f.CloseDb(db.get());
}

TEST(DbTest, DeferredCompactionSinglePass) {
  DbFixture f;
  auto db = f.OpenDb(f.SmallOptions(CompactionMode::kDeferred));
  constexpr int kKeys = 10000;
  testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
    for (int i = 0; i < kKeys; ++i) {
      EXPECT_TRUE((co_await d->Put(MakeFixedKey(
                                       static_cast<std::uint64_t>(i)),
                                   "v" + std::to_string(i)))
                      .ok());
    }
    // No automatic compaction in this mode.
    EXPECT_TRUE((co_await d->Flush()).ok());
    co_await d->WaitForIdle();
  }(db.get()));
  EXPECT_EQ(db->stats().compactions, 0u);
  const int l0_before = db->NumLevelFiles(0);
  EXPECT_GT(l0_before, 0);

  testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
    EXPECT_TRUE((co_await d->CompactRange()).ok());
  }(db.get()));
  EXPECT_EQ(db->NumLevelFiles(0), 0);
  EXPECT_GT(db->NumLevelFiles(VersionSet::kNumLevels - 1), 0);
  EXPECT_EQ(db->NumEntriesApprox(), static_cast<std::uint64_t>(kKeys));

  testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
    std::string v;
    for (int i : {0, 5000, 9999}) {
      EXPECT_TRUE(
          (co_await d->Get(MakeFixedKey(static_cast<std::uint64_t>(i)), &v))
              .ok());
      EXPECT_EQ(v, "v" + std::to_string(i));
    }
  }(db.get()));
  f.CloseDb(db.get());
}

TEST(DbTest, WriteStallsWhenL0Fills) {
  DbFixture f;
  auto options = f.SmallOptions(CompactionMode::kAuto);
  options.l0_stall_trigger = 6;
  auto db = f.OpenDb(options);
  testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
    for (int i = 0; i < 30000; ++i) {
      EXPECT_TRUE((co_await d->Put(MakeFixedKey(
                                       static_cast<std::uint64_t>(i)),
                                   std::string(64, 'x')))
                      .ok());
    }
    EXPECT_TRUE((co_await d->Flush()).ok());
    co_await d->WaitForIdle();
  }(db.get()));
  // With a tight stall trigger and slow compaction, stalls must occur.
  EXPECT_GT(db->stats().stalls, 0u);
  EXPECT_GT(db->stats().stall_time, 0u);
  f.CloseDb(db.get());
}

TEST(DbTest, RangeScanReturnsSortedWindow) {
  DbFixture f;
  auto db = f.OpenDb(f.SmallOptions());
  testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
    for (int i = 0; i < 5000; ++i) {
      EXPECT_TRUE((co_await d->Put(MakeFixedKey(
                                       static_cast<std::uint64_t>(i)),
                                   "v" + std::to_string(i)))
                      .ok());
    }
    std::vector<std::pair<std::string, std::string>> out;
    EXPECT_TRUE((co_await d->RangeScan(MakeFixedKey(1000),
                                       MakeFixedKey(1099), 0, &out))
                    .ok());
    EXPECT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].first, MakeFixedKey(1000 + i));
      EXPECT_EQ(out[i].second, "v" + std::to_string(1000 + i));
    }
    // Limit is honoured.
    out.clear();
    EXPECT_TRUE((co_await d->RangeScan(MakeFixedKey(0),
                                       MakeFixedKey(4999), 10, &out))
                    .ok());
    EXPECT_EQ(out.size(), 10u);
  }(db.get()));
  f.CloseDb(db.get());
}

TEST(DbTest, ScanSkipsDeletedAndShadowedKeys) {
  DbFixture f;
  auto db = f.OpenDb(f.SmallOptions());
  testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
    EXPECT_TRUE((co_await d->Put("a", "v1")).ok());
    EXPECT_TRUE((co_await d->Put("b", "v1")).ok());
    EXPECT_TRUE((co_await d->Put("c", "v1")).ok());
    EXPECT_TRUE((co_await d->Put("b", "v2")).ok());  // shadow
    EXPECT_TRUE((co_await d->Delete("c")).ok());     // tombstone
    std::vector<std::pair<std::string, std::string>> out;
    EXPECT_TRUE((co_await d->RangeScan("a", "z", 0, &out)).ok());
    EXPECT_EQ(out.size(), 2u);
    if (out.size() != 2u) co_return;
    EXPECT_EQ(out[0].first, "a");
    EXPECT_EQ(out[1].first, "b");
    EXPECT_EQ(out[1].second, "v2");
  }(db.get()));
  f.CloseDb(db.get());
}

TEST(DbTest, RecoveryFromWalAfterUncleanStop) {
  DbFixture f;
  auto options = f.SmallOptions();
  options.name = "recover_me";
  {
    auto db = f.OpenDb(options);
    testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
      EXPECT_TRUE((co_await d->Put("persisted", "yes")).ok());
      EXPECT_TRUE((co_await d->Put("also", "this")).ok());
    }(db.get()));
    f.CloseDb(db.get());
    // db destroyed without Flush: data lives only in WAL + memtable.
  }
  auto db2 = f.OpenDb(options);
  testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
    std::string v;
    EXPECT_TRUE((co_await d->Get("persisted", &v)).ok());
    EXPECT_EQ(v, "yes");
    EXPECT_TRUE((co_await d->Get("also", &v)).ok());
    EXPECT_EQ(v, "this");
  }(db2.get()));
  f.CloseDb(db2.get());
}

TEST(DbTest, RecoveryFromManifestAfterFlush) {
  DbFixture f;
  auto options = f.SmallOptions(CompactionMode::kNone);
  options.name = "manifested";
  {
    auto db = f.OpenDb(options);
    testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
      for (int i = 0; i < 3000; ++i) {
        EXPECT_TRUE((co_await d->Put(MakeFixedKey(
                                         static_cast<std::uint64_t>(i)),
                                     "v" + std::to_string(i)))
                        .ok());
      }
      EXPECT_TRUE((co_await d->Flush()).ok());
    }(db.get()));
    f.CloseDb(db.get());
  }
  auto db2 = f.OpenDb(options);
  EXPECT_GT(db2->NumLevelFiles(0), 0);
  testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
    std::string v;
    EXPECT_TRUE((co_await d->Get(MakeFixedKey(1234), &v)).ok());
    EXPECT_EQ(v, "v1234");
  }(db2.get()));
  f.CloseDb(db2.get());
}

TEST(DbTest, WalDisabledStillWorksInProcess) {
  DbFixture f;
  auto options = f.SmallOptions();
  options.wal_enabled = false;
  auto db = f.OpenDb(options);
  testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
    EXPECT_TRUE((co_await d->Put("k", "v")).ok());
    std::string v;
    EXPECT_TRUE((co_await d->Get("k", &v)).ok());
  }(db.get()));
  EXPECT_EQ(db->stats().wal_bytes, 0u);
  f.CloseDb(db.get());
}

TEST(DbTest, CompactionModeNoneNeverCompacts) {
  DbFixture f;
  auto db = f.OpenDb(f.SmallOptions(CompactionMode::kNone));
  testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
    for (int i = 0; i < 10000; ++i) {
      EXPECT_TRUE((co_await d->Put(MakeFixedKey(
                                       static_cast<std::uint64_t>(i)),
                                   "v"))
                      .ok());
    }
    EXPECT_TRUE((co_await d->Flush()).ok());
    co_await d->WaitForIdle();
  }(db.get()));
  EXPECT_EQ(db->stats().compactions, 0u);
  EXPECT_GE(db->NumLevelFiles(0), 4);  // files pile up in L0
  f.CloseDb(db.get());
}

TEST(DbTest, IoStatsDifferByCompactionMode) {
  // Auto compaction rewrites data repeatedly: device writes should exceed
  // the no-compaction configuration's writes for identical inserts. This
  // is the mechanism behind the paper's Fig. 7b.
  auto run = [](CompactionMode mode) {
    DbFixture f;
    auto db = f.OpenDb(f.SmallOptions(mode));
    testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
      for (int i = 0; i < 20000; ++i) {
        EXPECT_TRUE((co_await d->Put(MakeFixedKey(
                                         static_cast<std::uint64_t>(i)),
                                     std::string(32, 'v')))
                        .ok());
      }
      EXPECT_TRUE((co_await d->Flush()).ok());
      co_await d->WaitForIdle();
    }(db.get()));
    const std::uint64_t written = f.fs.device_bytes_written();
    auto s = testutil::RunSim(f.sim, db->Close());
    EXPECT_TRUE(s.ok());
    return written;
  };
  const std::uint64_t auto_writes = run(CompactionMode::kAuto);
  const std::uint64_t none_writes = run(CompactionMode::kNone);
  EXPECT_GT(auto_writes, none_writes * 3 / 2)
      << "auto=" << auto_writes << " none=" << none_writes;
}

TEST(DbTest, SharedBlockCacheDoesNotLeakBlocksAcrossInstances) {
  // Regression: two instances share one BlockCache and assign identical
  // per-instance SSTable file numbers. Cached blocks must be namespaced
  // per instance, or one DB's reads silently return the other's data.
  DbFixture f;
  auto options_a = f.SmallOptions(CompactionMode::kAuto);
  options_a.name = "dbA";
  auto options_b = f.SmallOptions(CompactionMode::kAuto);
  options_b.name = "dbB";
  auto db_a = f.OpenDb(options_a);
  auto db_b = f.OpenDb(options_b);

  constexpr int kKeys = 5000;
  testutil::RunSim(f.sim, [](Db* a, Db* b) -> sim::Task<void> {
    for (int i = 0; i < kKeys; ++i) {
      const std::string key = MakeFixedKey(static_cast<std::uint64_t>(i));
      EXPECT_TRUE((co_await a->Put(key, "A" + std::to_string(i))).ok());
      EXPECT_TRUE((co_await b->Put(key, "B" + std::to_string(i))).ok());
    }
    EXPECT_TRUE((co_await a->Flush()).ok());
    EXPECT_TRUE((co_await b->Flush()).ok());
    co_await a->WaitForIdle();
    co_await b->WaitForIdle();
  }(db_a.get(), db_b.get()));

  // Interleave reads so both instances populate and hit the shared cache.
  testutil::RunSim(f.sim, [](Db* a, Db* b) -> sim::Task<void> {
    Rng rng(12);
    std::string value;
    for (int probe = 0; probe < 500; ++probe) {
      const auto i = rng.Uniform(kKeys);
      const std::string key = MakeFixedKey(i);
      EXPECT_TRUE((co_await a->Get(key, &value)).ok());
      EXPECT_EQ(value, "A" + std::to_string(i));
      EXPECT_TRUE((co_await b->Get(key, &value)).ok());
      EXPECT_EQ(value, "B" + std::to_string(i));
    }
    // Seek-based scans must also see only their own instance's data.
    std::vector<std::pair<std::string, std::string>> out;
    EXPECT_TRUE((co_await a->RangeScan(MakeFixedKey(100), MakeFixedKey(199),
                                       0, &out))
                    .ok());
    EXPECT_EQ(out.size(), 100u);
    for (const auto& [key, value2] : out) {
      EXPECT_EQ(value2[0], 'A');
    }
  }(db_a.get(), db_b.get()));
  f.CloseDb(db_a.get());
  f.CloseDb(db_b.get());
}

TEST(DbTest, CloseIsIdempotentAndBlocksNewWrites) {
  DbFixture f;
  auto db = f.OpenDb(f.SmallOptions());
  f.CloseDb(db.get());
  f.CloseDb(db.get());
  testutil::RunSim(f.sim, [](Db* d) -> sim::Task<void> {
    auto s = co_await d->Put("k", "v");
    EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  }(db.get()));
}

}  // namespace
}  // namespace kvcsd::lsm
