#include "lsm/memtable.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/keys.h"
#include "common/random.h"

namespace kvcsd::lsm {
namespace {

TEST(InternalKeyTest, RoundTrip) {
  std::string k = MakeInternalKey("user-key", 42, ValueType::kValue);
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(Slice(k), &parsed));
  EXPECT_EQ(parsed.user_key, Slice("user-key"));
  EXPECT_EQ(parsed.sequence, 42u);
  EXPECT_EQ(parsed.type, ValueType::kValue);
}

TEST(InternalKeyTest, OrderingUserKeyThenSeqDesc) {
  const std::string a1 = MakeInternalKey("a", 1, ValueType::kValue);
  const std::string a9 = MakeInternalKey("a", 9, ValueType::kValue);
  const std::string b1 = MakeInternalKey("b", 1, ValueType::kValue);
  EXPECT_LT(CompareInternalKeys(Slice(a9), Slice(a1)), 0);  // newer first
  EXPECT_LT(CompareInternalKeys(Slice(a1), Slice(b1)), 0);
  EXPECT_EQ(CompareInternalKeys(Slice(a1), Slice(a1)), 0);
  // Deletion (type 0) sorts after value (type 1) at the same seq.
  const std::string ad = MakeInternalKey("a", 5, ValueType::kDeletion);
  const std::string av = MakeInternalKey("a", 5, ValueType::kValue);
  EXPECT_LT(CompareInternalKeys(Slice(av), Slice(ad)), 0);
}

TEST(InternalKeyTest, MalformedKeysRejected) {
  ParsedInternalKey parsed;
  EXPECT_FALSE(ParseInternalKey(Slice("short"), &parsed));
  std::string bad_type = MakeInternalKey("k", 1, ValueType::kValue);
  bad_type[bad_type.size() - 8] = 0x7f;  // type byte out of range
  EXPECT_FALSE(ParseInternalKey(Slice(bad_type), &parsed));
}

TEST(MemTableTest, PutGet) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "alpha", "one");
  mem.Add(2, ValueType::kValue, "beta", "two");
  std::string value;
  bool found = false;
  EXPECT_TRUE(mem.Get("alpha", 10, &value, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(value, "one");
  EXPECT_TRUE(mem.Get("beta", 10, &value, &found).ok());
  EXPECT_EQ(value, "two");
}

TEST(MemTableTest, MissingKeyNotFound) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "a", "1");
  std::string value;
  bool found = true;
  EXPECT_TRUE(mem.Get("zz", 10, &value, &found).IsNotFound());
  EXPECT_FALSE(found);
}

TEST(MemTableTest, OverwriteResolvesToNewest) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "k", "v1");
  mem.Add(5, ValueType::kValue, "k", "v5");
  mem.Add(3, ValueType::kValue, "k", "v3");
  std::string value;
  bool found = false;
  ASSERT_TRUE(mem.Get("k", 10, &value, &found).ok());
  EXPECT_EQ(value, "v5");
}

TEST(MemTableTest, SnapshotVisibility) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "k", "v1");
  mem.Add(5, ValueType::kValue, "k", "v5");
  std::string value;
  bool found = false;
  ASSERT_TRUE(mem.Get("k", 3, &value, &found).ok());  // snapshot at seq 3
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(mem.Get("k", 5, &value, &found).ok());
  EXPECT_EQ(value, "v5");
}

TEST(MemTableTest, TombstoneHidesKey) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "k", "v1");
  mem.Add(2, ValueType::kDeletion, "k", "");
  std::string value;
  bool found = false;
  EXPECT_TRUE(mem.Get("k", 10, &value, &found).IsNotFound());
  EXPECT_TRUE(found);  // authoritative: stop searching older tables
  // The old version is still visible at the old snapshot.
  ASSERT_TRUE(mem.Get("k", 1, &value, &found).ok());
  EXPECT_EQ(value, "v1");
}

TEST(MemTableTest, IterationIsSorted) {
  MemTable mem;
  Rng rng(77);
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 1000; ++i) {
    std::string key = MakeFixedKey(rng.Uniform(10000), 8);
    std::string value = "v" + std::to_string(i);
    mem.Add(static_cast<SequenceNumber>(i + 1), ValueType::kValue, key,
            value);
    expected[key] = value;  // later seq wins
  }
  MemTable::Iterator it(&mem);
  it.SeekToFirst();
  std::string last_user;
  std::map<std::string, std::string> seen;
  while (it.Valid()) {
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(it.internal_key(), &parsed));
    const std::string user = parsed.user_key.ToString();
    if (user != last_user) {
      // First occurrence of a user key is its newest version.
      seen[user] = it.value().ToString();
      last_user = user;
    }
    it.Next();
  }
  EXPECT_EQ(seen, expected);
}

TEST(MemTableTest, SeekPositionsAtLowerBound) {
  MemTable mem;
  mem.Add(1, ValueType::kValue, "b", "vb");
  mem.Add(2, ValueType::kValue, "d", "vd");
  MemTable::Iterator it(&mem);
  it.Seek(MakeInternalKey("c", kMaxSequenceNumber, ValueType::kValue));
  ASSERT_TRUE(it.Valid());
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(it.internal_key(), &parsed));
  EXPECT_EQ(parsed.user_key, Slice("d"));
}

TEST(MemTableTest, MemoryUsageGrows) {
  MemTable mem;
  const std::size_t before = mem.ApproximateMemoryUsage();
  EXPECT_LT(before, 8u * 1024);  // empty memtable must look nearly empty
  for (int i = 0; i < 1000; ++i) {
    mem.Add(static_cast<SequenceNumber>(i + 1), ValueType::kValue,
            MakeFixedKey(static_cast<std::uint64_t>(i)),
            std::string(100, 'x'));
  }
  EXPECT_GT(mem.ApproximateMemoryUsage(), before + 100u * 1000);
  EXPECT_EQ(mem.num_entries(), 1000u);
}

TEST(ArenaTest, AllocationsAreDistinctAndWritable) {
  Arena arena;
  char* a = arena.Allocate(100);
  char* b = arena.Allocate(100);
  EXPECT_NE(a, b);
  std::memset(a, 0xaa, 100);
  std::memset(b, 0xbb, 100);
  EXPECT_EQ(static_cast<unsigned char>(a[99]), 0xaau);
  // Large allocations get dedicated blocks.
  char* big = arena.Allocate(1 << 20);
  std::memset(big, 0xcc, 1 << 20);
  EXPECT_GE(arena.MemoryUsage(), (1u << 20) + 200u);
}

}  // namespace
}  // namespace kvcsd::lsm
