// Property sweeps over RocksLite against a std::map reference model:
// whatever the compaction mode, value size, and overwrite/delete mix, the
// DB must agree with the model on every lookup and scan.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "../testutil.h"
#include "common/keys.h"
#include "common/random.h"
#include "lsm/db.h"

namespace kvcsd::lsm {
namespace {

struct LsmCase {
  CompactionMode mode;
  std::uint32_t value_bytes;
  std::uint64_t operations;
  bool manual_compact_at_end;
};

void PrintTo(const LsmCase& c, std::ostream* os) {
  *os << "mode=" << static_cast<int>(c.mode) << " value=" << c.value_bytes
      << " ops=" << c.operations
      << " manual=" << c.manual_compact_at_end;
}

class LsmPropertyTest : public ::testing::TestWithParam<LsmCase> {};

TEST_P(LsmPropertyTest, MatchesReferenceModel) {
  const LsmCase& param = GetParam();

  sim::Simulation simulation;
  sim::CpuPool cpu(&simulation, "host", 8);
  storage::BlockSsd ssd(&simulation, storage::BlockSsdConfig{});
  hostenv::PageCache page_cache(MiB(128));
  hostenv::Fs fs(&simulation, &cpu, &ssd, &page_cache,
                 hostenv::CostModel::Host());
  LsmEnv env{&simulation, &fs, &cpu, hostenv::CostModel::Host(),
             &simulation.stats()};
  BlockCache block_cache(MiB(16));

  DbOptions options;
  options.memtable_size = KiB(64);
  options.level_base_size = KiB(512);
  options.max_file_size = KiB(128);
  options.compaction_mode = param.mode;

  auto db = testutil::RunSim(simulation,
                             Db::Open(&env, &block_cache, options));
  ASSERT_TRUE(db.ok());

  // Reference model mirrors a mixed put/overwrite/delete stream with a
  // bounded key population so that collisions actually occur.
  std::map<std::string, std::string> model;
  Rng rng(param.operations * 7 + param.value_bytes);

  testutil::RunSim(
      simulation,
      [](Db* d, const LsmCase* c, Rng* r,
         std::map<std::string, std::string>* m) -> sim::Task<void> {
        const std::uint64_t population = c->operations / 2 + 16;
        for (std::uint64_t op = 0; op < c->operations; ++op) {
          const std::string key = MakeFixedKey(r->Uniform(population));
          if (r->OneIn(8)) {
            EXPECT_TRUE((co_await d->Delete(key)).ok());
            m->erase(key);
          } else {
            std::string value(c->value_bytes, 'v');
            const std::uint64_t tag = r->Next();
            for (std::size_t i = 0; i < 8 && i < value.size(); ++i) {
              value[i] = static_cast<char>('a' + ((tag >> (i * 4)) & 0xf));
            }
            EXPECT_TRUE((co_await d->Put(key, value)).ok());
            (*m)[key] = value;
          }
        }
        if (c->manual_compact_at_end) {
          EXPECT_TRUE((co_await d->CompactRange()).ok());
        } else {
          EXPECT_TRUE((co_await d->Flush()).ok());
          co_await d->WaitForIdle();
        }

        // Every key in the model must read back exactly; deleted keys and
        // never-written keys must be absent.
        std::string value;
        for (const auto& [key, expected] : *m) {
          Status s = co_await d->Get(key, &value);
          EXPECT_TRUE(s.ok()) << "lost key";
          if (s.ok()) {
            EXPECT_EQ(value, expected);
          }
        }
        for (int probe = 0; probe < 50; ++probe) {
          const std::string key =
              MakeFixedKey(1ull << 40 | static_cast<std::uint64_t>(probe));
          EXPECT_TRUE((co_await d->Get(key, &value)).IsNotFound());
        }

        // Full scan equals the model (ordered, tombstones invisible).
        std::vector<std::pair<std::string, std::string>> scanned;
        EXPECT_TRUE((co_await d->RangeScan(MakeFixedKey(0),
                                           MakeFixedKey(~0ull), 0,
                                           &scanned))
                        .ok());
        EXPECT_EQ(scanned.size(), m->size());
        auto it = m->begin();
        for (std::size_t i = 0; i < scanned.size() && it != m->end();
             ++i, ++it) {
          EXPECT_EQ(scanned[i].first, it->first);
          EXPECT_EQ(scanned[i].second, it->second);
        }
        EXPECT_TRUE((co_await d->Close()).ok());
      }(db->get(), &param, &rng, &model));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LsmPropertyTest,
    ::testing::Values(
        LsmCase{CompactionMode::kAuto, 32, 4000, false},
        LsmCase{CompactionMode::kAuto, 32, 20000, false},
        LsmCase{CompactionMode::kAuto, 256, 4000, false},
        LsmCase{CompactionMode::kDeferred, 32, 8000, true},
        LsmCase{CompactionMode::kDeferred, 128, 4000, true},
        LsmCase{CompactionMode::kNone, 32, 8000, false},
        LsmCase{CompactionMode::kNone, 512, 2000, false}));

}  // namespace
}  // namespace kvcsd::lsm
