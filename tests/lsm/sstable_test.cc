#include "lsm/sstable.h"

#include <gtest/gtest.h>

#include <map>

#include "../testutil.h"
#include "common/keys.h"
#include "lsm/iterator.h"

namespace kvcsd::lsm {
namespace {

struct SstFixture {
  sim::Simulation sim;
  sim::CpuPool cpu{&sim, "host", 4};
  storage::BlockSsd ssd{&sim, storage::BlockSsdConfig{}};
  hostenv::PageCache page_cache{MiB(64)};
  hostenv::Fs fs{&sim, &cpu, &ssd, &page_cache, hostenv::CostModel::Host()};
  LsmEnv env{&sim, &fs, &cpu, hostenv::CostModel::Host(), &sim.stats()};
  BlockCache block_cache{MiB(8)};

  // Builds a table of n sequential keys: key(i) -> "value-<i>", seq=i+1.
  std::unique_ptr<SstableReader> BuildTable(int n,
                                            const std::string& name = "t",
                                            SstableOptions opts = {}) {
    auto file = fs.Create(name).value();
    SstableBuilder builder(&env, file, opts);
    testutil::RunSim(sim, [](SstableBuilder* b, int count) -> sim::Task<void> {
      for (int i = 0; i < count; ++i) {
        std::string ikey = MakeInternalKey(
            MakeFixedKey(static_cast<std::uint64_t>(i)),
            static_cast<SequenceNumber>(i + 1), ValueType::kValue);
        EXPECT_TRUE(
            (co_await b->Add(ikey, "value-" + std::to_string(i))).ok());
      }
      EXPECT_TRUE((co_await b->Finish()).ok());
    }(&builder, n));
    auto reader =
        testutil::RunSim(sim, SstableReader::Open(&env, &block_cache, 1, name));
    EXPECT_TRUE(reader.ok()) << reader.status().ToString();
    return std::move(*reader);
  }
};

TEST(SstableTest, BuildAndPointLookup) {
  SstFixture f;
  auto table = f.BuildTable(1000);
  EXPECT_EQ(table->num_entries(), 1000u);
  for (int i : {0, 1, 499, 998, 999}) {
    std::string value;
    bool found = false;
    auto s = testutil::RunSim(
        f.sim, table->Get(MakeFixedKey(static_cast<std::uint64_t>(i)),
                          kMaxSequenceNumber, &value, &found));
    ASSERT_TRUE(s.ok()) << i << ": " << s.ToString();
    EXPECT_TRUE(found);
    EXPECT_EQ(value, "value-" + std::to_string(i));
  }
}

TEST(SstableTest, AbsentKeyNotFound) {
  SstFixture f;
  auto table = f.BuildTable(100);
  std::string value;
  bool found = true;
  auto s = testutil::RunSim(
      f.sim, table->Get(MakeFixedKey(100000), kMaxSequenceNumber, &value,
                        &found));
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(found);
}

TEST(SstableTest, BloomFilterAvoidsBlockReads) {
  SstFixture f;
  auto table = f.BuildTable(2000);
  f.block_cache.Clear();
  f.page_cache.DropAll();
  const std::uint64_t before = f.fs.device_bytes_read();
  // Probe many absent keys: bloom should reject nearly all without I/O.
  int io_probes = 0;
  for (int i = 0; i < 200; ++i) {
    std::string value;
    bool found = false;
    (void)testutil::RunSim(
        f.sim,
        table->Get(MakeFixedKey(static_cast<std::uint64_t>(500000 + i)),
                   kMaxSequenceNumber, &value, &found));
    if (f.fs.device_bytes_read() > before) ++io_probes;
  }
  // Allow a few false positives; the vast majority must be filtered.
  EXPECT_LT(f.fs.device_bytes_read() - before, 10u * 4096u);
  (void)io_probes;
}

TEST(SstableTest, BlockCacheServesRepeatLookups) {
  SstFixture f;
  auto table = f.BuildTable(1000);
  f.block_cache.Clear();
  f.page_cache.DropAll();
  std::string value;
  bool found = false;
  (void)testutil::RunSim(f.sim, table->Get(MakeFixedKey(500),
                                           kMaxSequenceNumber, &value,
                                           &found));
  const std::uint64_t after_first = f.fs.device_bytes_read();
  EXPECT_GT(after_first, 0u);
  // Same block again: served by the block cache, zero new device traffic.
  (void)testutil::RunSim(f.sim, table->Get(MakeFixedKey(501),
                                           kMaxSequenceNumber, &value,
                                           &found));
  EXPECT_EQ(f.fs.device_bytes_read(), after_first);
  EXPECT_GE(f.block_cache.hits(), 1u);
}

TEST(SstableTest, SnapshotSelectsVersion) {
  SstFixture f;
  auto file = f.fs.Create("versions").value();
  SstableBuilder builder(&f.env, file, SstableOptions{});
  testutil::RunSim(f.sim, [](SstableBuilder* b) -> sim::Task<void> {
    // Same user key, two versions: seq 7 then seq 3 (descending order).
    EXPECT_TRUE((co_await b->Add(MakeInternalKey("k", 7, ValueType::kValue),
                                 "new"))
                    .ok());
    EXPECT_TRUE((co_await b->Add(MakeInternalKey("k", 3, ValueType::kValue),
                                 "old"))
                    .ok());
    EXPECT_TRUE((co_await b->Finish()).ok());
  }(&builder));
  auto reader = testutil::RunSim(
      f.sim, SstableReader::Open(&f.env, &f.block_cache, 2, "versions"));
  ASSERT_TRUE(reader.ok());

  std::string value;
  bool found = false;
  ASSERT_TRUE(testutil::RunSim(f.sim, (*reader)->Get("k", 10, &value, &found))
                  .ok());
  EXPECT_EQ(value, "new");
  ASSERT_TRUE(testutil::RunSim(f.sim, (*reader)->Get("k", 5, &value, &found))
                  .ok());
  EXPECT_EQ(value, "old");
  EXPECT_TRUE(
      testutil::RunSim(f.sim, (*reader)->Get("k", 2, &value, &found))
          .IsNotFound());
}

TEST(SstableTest, OutOfOrderAddRejected) {
  SstFixture f;
  auto file = f.fs.Create("bad").value();
  SstableBuilder builder(&f.env, file, SstableOptions{});
  testutil::RunSim(f.sim, [](SstableBuilder* b) -> sim::Task<void> {
    EXPECT_TRUE((co_await b->Add(MakeInternalKey("b", 1, ValueType::kValue),
                                 "v"))
                    .ok());
    auto s = co_await b->Add(MakeInternalKey("a", 2, ValueType::kValue), "v");
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  }(&builder));
}

TEST(SstableTest, CorruptFooterDetected) {
  SstFixture f;
  auto file = f.fs.Create("tiny").value();
  testutil::RunSim(f.sim,
                   [](hostenv::Fs* fs, hostenv::FileHandle h) -> sim::Task<void> {
    std::string junk(10, 'j');
    EXPECT_TRUE((co_await fs->Append(
                     h, std::span<const std::byte>(
                            reinterpret_cast<const std::byte*>(junk.data()),
                            junk.size())))
                    .ok());
  }(&f.fs, file));
  auto reader = testutil::RunSim(
      f.sim, SstableReader::Open(&f.env, &f.block_cache, 3, "tiny"));
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

TEST(SstableTest, IteratorFullScanInOrder) {
  SstFixture f;
  auto table = f.BuildTable(3000);
  testutil::RunSim(f.sim, [](SstableReader* t) -> sim::Task<void> {
    SstableReader::Iterator it(t);
    EXPECT_TRUE((co_await it.SeekToFirst()).ok());
    int count = 0;
    std::string prev;
    while (it.Valid()) {
      if (!prev.empty()) {
        EXPECT_LT(CompareInternalKeys(Slice(prev), it.internal_key()), 0);
      }
      prev = it.internal_key().ToString();
      ++count;
      EXPECT_TRUE((co_await it.Next()).ok());
    }
    EXPECT_EQ(count, 3000);
  }(table.get()));
}

TEST(SstableTest, IteratorSeek) {
  SstFixture f;
  auto table = f.BuildTable(1000);
  testutil::RunSim(f.sim, [](SstableReader* t) -> sim::Task<void> {
    SstableReader::Iterator it(t);
    const std::string target = MakeInternalKey(
        MakeFixedKey(700), kMaxSequenceNumber, ValueType::kValue);
    EXPECT_TRUE((co_await it.Seek(target)).ok());
    EXPECT_TRUE(it.Valid());
    if (!it.Valid()) co_return;
    EXPECT_EQ(ExtractUserKey(it.internal_key()), Slice(MakeFixedKey(700)));
    EXPECT_EQ(it.value(), Slice("value-700"));

    // Seek past the end.
    const std::string beyond = MakeInternalKey(
        MakeFixedKey(10000), kMaxSequenceNumber, ValueType::kValue);
    EXPECT_TRUE((co_await it.Seek(beyond)).ok());
    EXPECT_FALSE(it.Valid());
  }(table.get()));
}

TEST(SstableTest, MergingIteratorInterleavesTables) {
  SstFixture f;
  // Table A: even keys (seq 1000+), table B: odd keys.
  auto build = [&f](const std::string& name, int start,
                    std::uint64_t file_number) {
    auto file = f.fs.Create(name).value();
    SstableBuilder builder(&f.env, file, SstableOptions{});
    testutil::RunSim(f.sim,
                     [](SstableBuilder* b, int first) -> sim::Task<void> {
      for (int i = first; i < 200; i += 2) {
        EXPECT_TRUE((co_await b->Add(
                         MakeInternalKey(
                             MakeFixedKey(static_cast<std::uint64_t>(i)),
                             static_cast<SequenceNumber>(i + 1),
                             ValueType::kValue),
                         "v" + std::to_string(i)))
                        .ok());
      }
      EXPECT_TRUE((co_await b->Finish()).ok());
    }(&builder, start));
    auto reader = testutil::RunSim(
        f.sim,
        SstableReader::Open(&f.env, &f.block_cache, file_number, name));
    EXPECT_TRUE(reader.ok());
    return std::shared_ptr<SstableReader>(std::move(*reader));
  };
  auto ta = build("even", 0, 10);
  auto tb = build("odd", 1, 11);

  testutil::RunSim(f.sim, [](SstableReader* a,
                             SstableReader* b) -> sim::Task<void> {
    std::vector<std::unique_ptr<InternalIterator>> children;
    children.push_back(std::make_unique<SstableIterator>(a));
    children.push_back(std::make_unique<SstableIterator>(b));
    MergingIterator merged(std::move(children));
    EXPECT_TRUE((co_await merged.SeekToFirst()).ok());
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(merged.Valid()) << i;
      if (!merged.Valid()) co_return;
      EXPECT_EQ(ExtractUserKey(merged.internal_key()),
                Slice(MakeFixedKey(static_cast<std::uint64_t>(i))));
      EXPECT_TRUE((co_await merged.Next()).ok());
    }
    EXPECT_FALSE(merged.Valid());
  }(ta.get(), tb.get()));
}

}  // namespace
}  // namespace kvcsd::lsm
