#include "lsm/wal.h"

#include <gtest/gtest.h>

#include "../testutil.h"
#include "hostenv/fs.h"

namespace kvcsd::lsm {
namespace {

struct WalFixture {
  sim::Simulation sim;
  sim::CpuPool cpu{&sim, "host", 2};
  storage::BlockSsd ssd{&sim, storage::BlockSsdConfig{}};
  hostenv::PageCache cache{MiB(16)};
  hostenv::Fs fs{&sim, &cpu, &ssd, &cache, hostenv::CostModel::Host()};
};

TEST(WalTest, WriteThenReadAll) {
  WalFixture f;
  auto file = f.fs.Create("wal-1").value();
  WalWriter writer(&f.fs, file);
  testutil::RunSim(f.sim, [](WalWriter* w) -> sim::Task<void> {
    EXPECT_TRUE((co_await w->AddRecord("first")).ok());
    EXPECT_TRUE((co_await w->AddRecord("second record")).ok());
    EXPECT_TRUE((co_await w->AddRecord("")).ok());
    EXPECT_TRUE((co_await w->Sync()).ok());
  }(&writer));

  WalReader reader(&f.fs, "wal-1");
  auto records = testutil::RunSim(f.sim, reader.ReadAll());
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0], "first");
  EXPECT_EQ((*records)[1], "second record");
  EXPECT_EQ((*records)[2], "");
}

TEST(WalTest, EmptyLogYieldsNoRecords) {
  WalFixture f;
  (void)f.fs.Create("wal-2").value();
  WalReader reader(&f.fs, "wal-2");
  auto records = testutil::RunSim(f.sim, reader.ReadAll());
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(WalTest, TruncatedTailStopsRecovery) {
  WalFixture f;
  auto file = f.fs.Create("wal-3").value();
  WalWriter writer(&f.fs, file);
  testutil::RunSim(f.sim, [](WalWriter* w) -> sim::Task<void> {
    EXPECT_TRUE((co_await w->AddRecord("intact")).ok());
  }(&writer));
  // Simulate a torn write: append half a record's framing.
  const std::string garbage = "\x01\x02\x03";
  testutil::RunSim(f.sim, [](hostenv::Fs* fs, hostenv::FileHandle h,
                             const std::string* g) -> sim::Task<void> {
    EXPECT_TRUE((co_await fs->Append(
                     h, std::span<const std::byte>(
                            reinterpret_cast<const std::byte*>(g->data()),
                            g->size())))
                    .ok());
  }(&f.fs, file, &garbage));

  WalReader reader(&f.fs, "wal-3");
  auto records = testutil::RunSim(f.sim, reader.ReadAll());
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0], "intact");
}

TEST(WalTest, CorruptPayloadStopsRecovery) {
  WalFixture f;
  auto file = f.fs.Create("wal-4").value();
  WalWriter writer(&f.fs, file);
  std::string long_payload(200, 'p');
  testutil::RunSim(f.sim,
                   [](WalWriter* w, const std::string* p) -> sim::Task<void> {
    EXPECT_TRUE((co_await w->AddRecord("good")).ok());
    EXPECT_TRUE((co_await w->AddRecord(*p)).ok());
  }(&writer, &long_payload));

  // Corrupt a byte inside the second record's payload region by writing a
  // fresh file with the flipped byte (the Fs has no overwrite API, so
  // rebuild the image).
  // Instead: read back via a reader after flipping bytes is not possible;
  // assert at least that both records are currently intact, then rely on
  // the truncation test above for the stop-on-bad-crc path.
  WalReader reader(&f.fs, "wal-4");
  auto records = testutil::RunSim(f.sim, reader.ReadAll());
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
}

TEST(WalTest, MissingFileIsError) {
  WalFixture f;
  WalReader reader(&f.fs, "nope");
  auto records = testutil::RunSim(f.sim, reader.ReadAll());
  EXPECT_EQ(records.status().code(), StatusCode::kNotFound);
}

TEST(WalTest, ManyRecordsRoundTrip) {
  WalFixture f;
  auto file = f.fs.Create("wal-5").value();
  WalWriter writer(&f.fs, file);
  testutil::RunSim(f.sim, [](WalWriter* w) -> sim::Task<void> {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_TRUE(
          (co_await w->AddRecord("record-" + std::to_string(i))).ok());
    }
  }(&writer));
  WalReader reader(&f.fs, "wal-5");
  auto records = testutil::RunSim(f.sim, reader.ReadAll());
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2000u);
  EXPECT_EQ((*records)[1234], "record-1234");
}

}  // namespace
}  // namespace kvcsd::lsm
