#include "nvme/queue.h"

#include <gtest/gtest.h>

#include "../testutil.h"
#include "nvme/skey.h"

namespace kvcsd::nvme {
namespace {

TEST(CommandTest, WireSizesCountPayloads) {
  Command cmd;
  cmd.opcode = Opcode::kKvStore;
  cmd.key = std::string(16, 'k');
  cmd.value = std::string(100, 'v');
  EXPECT_EQ(CommandWireSize(cmd), 64u + 16 + 100);

  Completion cpl;
  cpl.value = std::string(32, 'r');
  cpl.results.emplace_back(std::string(16, 'a'), std::string(48, 'b'));
  EXPECT_EQ(CompletionWireSize(cpl), 16u + 32 + 16 + 48);
}

TEST(QueuePairTest, SubmitReceivesDeviceReply) {
  sim::Simulation sim;
  QueuePair qp(&sim, PcieConfig{});

  // Echo device: completes each command with its key as the value.
  sim.Spawn([](QueuePair* queue) -> sim::Task<void> {
    for (int i = 0; i < 2; ++i) {
      auto incoming = co_await queue->NextCommand();
      Completion reply;
      reply.status = Status::Ok();
      reply.value = "echo:" + incoming.command.key;
      co_await queue->Complete(std::move(incoming), std::move(reply));
    }
  }(&qp));

  std::vector<std::string> replies;
  sim.Spawn([](QueuePair* queue, std::vector<std::string>* out)
                -> sim::Task<void> {
    for (int i = 0; i < 2; ++i) {
      Command cmd;
      cmd.opcode = Opcode::kKvRetrieve;
      cmd.key = "k" + std::to_string(i);
      Completion reply = co_await queue->Submit(std::move(cmd));
      out->push_back(reply.value);
    }
  }(&qp, &replies));

  sim.Run();
  EXPECT_EQ(replies, (std::vector<std::string>{"echo:k0", "echo:k1"}));
  EXPECT_EQ(qp.submitted(), 2u);
  EXPECT_EQ(qp.completed(), 2u);
}

TEST(QueuePairTest, TransferTimeScalesWithPayload) {
  sim::Simulation sim;
  PcieConfig pcie;
  pcie.bytes_per_sec = 1e9;
  pcie.request_latency = Microseconds(10);
  pcie.completion_latency = Microseconds(10);
  QueuePair qp(&sim, pcie);

  sim.Spawn([](QueuePair* queue) -> sim::Task<void> {
    auto incoming = co_await queue->NextCommand();
    // NOTE: named + std::move, never a prvalue temporary — see the
    // "GCC 12 pitfall" note in sim/task.h.
    Completion reply;
    co_await queue->Complete(std::move(incoming), std::move(reply));
  }(&qp));

  Tick done = 0;
  sim.Spawn([](sim::Simulation* s, QueuePair* queue,
               Tick* out) -> sim::Task<void> {
    Command cmd;
    cmd.opcode = Opcode::kBulkStore;
    cmd.value = std::string(MiB(1), 'x');
    (void)co_await queue->Submit(std::move(cmd));
    *out = s->Now();
  }(&sim, &qp, &done));
  sim.Run();

  // >= 1 MiB at 1 GB/s plus both latencies.
  EXPECT_GE(done, TransferTicks(MiB(1), 1e9) + Microseconds(20));
  EXPECT_GT(qp.host_to_device_bytes(), MiB(1));
  EXPECT_EQ(qp.device_to_host_bytes(), 16u);  // bare CQE
}

TEST(QueuePairTest, ConcurrentSubmittersEachGetTheirReply) {
  sim::Simulation sim;
  QueuePair qp(&sim, PcieConfig{});

  sim.Spawn([](QueuePair* queue) -> sim::Task<void> {
    for (int i = 0; i < 8; ++i) {
      auto incoming = co_await queue->NextCommand();
      Completion reply;
      reply.value = incoming.command.key;
      co_await queue->Complete(std::move(incoming), std::move(reply));
    }
  }(&qp));

  int correct = 0;
  for (int t = 0; t < 8; ++t) {
    sim.Spawn([](QueuePair* queue, int id, int* ok_count) -> sim::Task<void> {
      Command cmd;
      cmd.key = "key-" + std::to_string(id);
      Completion reply = co_await queue->Submit(std::move(cmd));
      if (reply.value == "key-" + std::to_string(id)) ++*ok_count;
    }(&qp, t, &correct));
  }
  sim.Run();
  EXPECT_EQ(correct, 8);
}

TEST(SkeyTest, TypedEncodersPreserveOrder) {
  EXPECT_LT(EncodeSecondaryF32(1.5f), EncodeSecondaryF32(2.5f));
  EXPECT_LT(EncodeSecondaryF32(-3.0f), EncodeSecondaryF32(-1.0f));
  EXPECT_LT(EncodeSecondaryF32(-1.0f), EncodeSecondaryF32(1.0f));
  EXPECT_LT(EncodeSecondaryI32(-5), EncodeSecondaryI32(7));
  EXPECT_LT(EncodeSecondaryU64(10), EncodeSecondaryU64(200));
  EXPECT_LT(EncodeSecondaryF64(-0.1), EncodeSecondaryF64(0.1));
}

TEST(SkeyTest, EncodeSecondaryKeyBytesDispatchesOnType) {
  SecondaryIndexSpec spec;
  spec.type = SecondaryKeyType::kF32;
  spec.value_length = 4;
  float f = 42.5f;
  std::string raw(reinterpret_cast<const char*>(&f), 4);
  auto encoded = EncodeSecondaryKeyBytes(Slice(raw), spec);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(*encoded, EncodeSecondaryF32(42.5f));

  // Length mismatch rejected.
  spec.value_length = 8;
  auto bad = EncodeSecondaryKeyBytes(Slice(raw), spec);
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kvcsd::nvme
