#include "nvme/queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "../testutil.h"
#include "nvme/skey.h"

namespace kvcsd::nvme {
namespace {

TEST(CommandTest, WireSizesCountPayloads) {
  Command cmd;
  cmd.opcode = Opcode::kKvStore;
  cmd.key = std::string(16, 'k');
  cmd.value = std::string(100, 'v');
  EXPECT_EQ(CommandWireSize(cmd), 64u + 16 + 100);

  Completion cpl;
  cpl.value = std::string(32, 'r');
  cpl.results.emplace_back(std::string(16, 'a'), std::string(48, 'b'));
  EXPECT_EQ(CompletionWireSize(cpl), 16u + 32 + 16 + 48);
}

TEST(QueuePairTest, SubmitReceivesDeviceReply) {
  sim::Simulation sim;
  QueuePair qp(&sim, PcieConfig{});

  // Echo device: completes each command with its key as the value.
  sim.Spawn([](QueuePair* queue) -> sim::Task<void> {
    for (int i = 0; i < 2; ++i) {
      auto incoming = co_await queue->NextCommand();
      Completion reply;
      reply.status = Status::Ok();
      reply.value = "echo:" + incoming.command.key;
      co_await queue->Complete(std::move(incoming), std::move(reply));
    }
  }(&qp));

  std::vector<std::string> replies;
  sim.Spawn([](QueuePair* queue, std::vector<std::string>* out)
                -> sim::Task<void> {
    for (int i = 0; i < 2; ++i) {
      Command cmd;
      cmd.opcode = Opcode::kKvRetrieve;
      cmd.key = "k" + std::to_string(i);
      Completion reply = co_await queue->Submit(std::move(cmd));
      out->push_back(reply.value);
    }
  }(&qp, &replies));

  sim.Run();
  EXPECT_EQ(replies, (std::vector<std::string>{"echo:k0", "echo:k1"}));
  EXPECT_EQ(qp.submitted(), 2u);
  EXPECT_EQ(qp.completed(), 2u);
}

TEST(QueuePairTest, TransferTimeScalesWithPayload) {
  sim::Simulation sim;
  PcieConfig pcie;
  pcie.bytes_per_sec = 1e9;
  pcie.request_latency = Microseconds(10);
  pcie.completion_latency = Microseconds(10);
  QueuePair qp(&sim, pcie);

  sim.Spawn([](QueuePair* queue) -> sim::Task<void> {
    auto incoming = co_await queue->NextCommand();
    // NOTE: named + std::move, never a prvalue temporary — see the
    // "GCC 12 pitfall" note in sim/task.h.
    Completion reply;
    co_await queue->Complete(std::move(incoming), std::move(reply));
  }(&qp));

  Tick done = 0;
  sim.Spawn([](sim::Simulation* s, QueuePair* queue,
               Tick* out) -> sim::Task<void> {
    Command cmd;
    cmd.opcode = Opcode::kBulkStore;
    cmd.value = std::string(MiB(1), 'x');
    (void)co_await queue->Submit(std::move(cmd));
    *out = s->Now();
  }(&sim, &qp, &done));
  sim.Run();

  // >= 1 MiB at 1 GB/s plus both latencies.
  EXPECT_GE(done, TransferTicks(MiB(1), 1e9) + Microseconds(20));
  EXPECT_GT(qp.host_to_device_bytes(), MiB(1));
  EXPECT_EQ(qp.device_to_host_bytes(), 16u);  // bare CQE
}

TEST(QueuePairTest, ConcurrentSubmittersEachGetTheirReply) {
  sim::Simulation sim;
  QueuePair qp(&sim, PcieConfig{});

  sim.Spawn([](QueuePair* queue) -> sim::Task<void> {
    for (int i = 0; i < 8; ++i) {
      auto incoming = co_await queue->NextCommand();
      Completion reply;
      reply.value = incoming.command.key;
      co_await queue->Complete(std::move(incoming), std::move(reply));
    }
  }(&qp));

  int correct = 0;
  for (int t = 0; t < 8; ++t) {
    sim.Spawn([](QueuePair* queue, int id, int* ok_count) -> sim::Task<void> {
      Command cmd;
      cmd.key = "key-" + std::to_string(id);
      Completion reply = co_await queue->Submit(std::move(cmd));
      if (reply.value == "key-" + std::to_string(id)) ++*ok_count;
    }(&qp, t, &correct));
  }
  sim.Run();
  EXPECT_EQ(correct, 8);
}

// Doorbell batching (DESIGN.md §11): a batch of K commands rings one
// doorbell, so the per-command request latency is paid once. K serial
// async submits pay it K times; the byte service time is identical.
TEST(QueuePairTest, BatchedSubmitAmortizesDoorbell) {
  sim::Simulation sim;
  PcieConfig pcie;
  pcie.bytes_per_sec = 1e9;
  pcie.request_latency = Microseconds(10);
  QueuePair serial_qp(&sim, pcie);  // each pair owns its own link
  QueuePair batch_qp(&sim, pcie);
  constexpr std::uint64_t kCommands = 8;

  Command probe;
  probe.opcode = Opcode::kKvStore;
  probe.key = std::string(16, 'k');
  probe.value = std::string(1024, 'v');
  const std::uint64_t wire = CommandWireSize(probe);

  Tick serial_done = 0;
  sim.Spawn([](sim::Simulation* s, QueuePair* qp,
               Tick* out) -> sim::Task<void> {
    for (std::uint64_t i = 0; i < kCommands; ++i) {
      Command cmd;
      cmd.opcode = Opcode::kKvStore;
      cmd.key = std::string(16, 'k');
      cmd.value = std::string(1024, 'v');
      (void)co_await qp->SubmitAsync(std::move(cmd));
    }
    *out = s->Now();
  }(&sim, &serial_qp, &serial_done));

  Tick batch_done = 0;
  sim.Spawn([](sim::Simulation* s, QueuePair* qp,
               Tick* out) -> sim::Task<void> {
    std::vector<Command> cmds;
    for (std::uint64_t i = 0; i < kCommands; ++i) {
      Command cmd;
      cmd.opcode = Opcode::kKvStore;
      cmd.key = std::string(16, 'k');
      cmd.value = std::string(1024, 'v');
      cmds.push_back(std::move(cmd));
    }
    (void)co_await qp->SubmitBatch(std::move(cmds));
    *out = s->Now();
  }(&sim, &batch_qp, &batch_done));

  sim.Run();

  // Serial: every submit pays request_latency + its own service time.
  EXPECT_EQ(serial_done,
            kCommands * (Microseconds(10) + TransferTicks(wire, 1e9)));
  // Batched: one doorbell, one back-to-back DMA of all K payloads.
  EXPECT_EQ(batch_done,
            Microseconds(10) + TransferTicks(kCommands * wire, 1e9));
  EXPECT_LT(batch_done, serial_done);
  EXPECT_GE(serial_done - batch_done, (kCommands - 1) * Microseconds(10));
  EXPECT_EQ(serial_qp.sq_depth(), kCommands);
  EXPECT_EQ(batch_qp.sq_depth(), kCommands);
}

TEST(QueueSetTest, RoundRobinAlternatesAcrossPairs) {
  sim::Simulation sim;
  QueueSetConfig cfg;
  cfg.num_queues = 2;
  QueueSet set(&sim, cfg);

  for (std::uint32_t q = 0; q < 2; ++q) {
    sim.Spawn([](QueueSet* s, std::uint32_t queue) -> sim::Task<void> {
      for (int i = 0; i < 3; ++i) {
        Command cmd;
        cmd.opcode = Opcode::kKvStore;
        cmd.key = "q" + std::to_string(queue) + "-" + std::to_string(i);
        (void)co_await s->pair(queue)->SubmitAsync(std::move(cmd));
      }
    }(&set, q));
  }

  std::vector<std::uint32_t> order;
  sim.Spawn([](sim::Simulation* s, QueueSet* qs,
               std::vector<std::uint32_t>* out) -> sim::Task<void> {
    // Let both submitters fill their SQs before the device starts popping.
    co_await s->Delay(Milliseconds(1));
    for (int i = 0; i < 6; ++i) {
      auto incoming = co_await qs->NextCommand();
      out->push_back(incoming.queue_id);
      Completion reply;
      co_await qs->Complete(std::move(incoming), std::move(reply));
    }
  }(&sim, &set, &order));

  sim.Run();
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 0, 1, 0, 1}));
  EXPECT_EQ(set.submitted(), 6u);
  EXPECT_EQ(set.completed(), 6u);
  EXPECT_EQ(set.sq_depth(), 0u);
}

TEST(QueueSetTest, WeightedArbitrationSpendsQuanta) {
  sim::Simulation sim;
  QueueSetConfig cfg;
  cfg.num_queues = 2;
  cfg.arbitration = Arbitration::kWeighted;
  cfg.weights = {2, 1};
  QueueSet set(&sim, cfg);

  sim.Spawn([](QueueSet* s) -> sim::Task<void> {
    for (int i = 0; i < 4; ++i) {
      Command cmd;
      cmd.opcode = Opcode::kKvStore;
      (void)co_await s->pair(0)->SubmitAsync(std::move(cmd));
    }
    for (int i = 0; i < 2; ++i) {
      Command cmd;
      cmd.opcode = Opcode::kKvStore;
      (void)co_await s->pair(1)->SubmitAsync(std::move(cmd));
    }
  }(&set));

  std::vector<std::uint32_t> order;
  sim.Spawn([](sim::Simulation* s, QueueSet* qs,
               std::vector<std::uint32_t>* out) -> sim::Task<void> {
    co_await s->Delay(Milliseconds(1));
    for (int i = 0; i < 6; ++i) {
      auto incoming = co_await qs->NextCommand();
      out->push_back(incoming.queue_id);
      Completion reply;
      co_await qs->Complete(std::move(incoming), std::move(reply));
    }
  }(&sim, &set, &order));

  sim.Run();
  // weights {2,1}: two from queue 0, one from queue 1, repeat.
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 0, 1, 0, 0, 1}));
}

TEST(QueueSetTest, DepthCapBlocksSubmittersUntilCompletionsFreeSlots) {
  // Without a device, the third submission blocks on the per-queue cap.
  {
    sim::Simulation sim;
    QueueSetConfig cfg;
    cfg.sq_depth_cap = 2;
    QueueSet set(&sim, cfg);
    sim.Spawn([](QueueSet* s) -> sim::Task<void> {
      for (int i = 0; i < 3; ++i) {
        Command cmd;
        cmd.opcode = Opcode::kKvStore;
        (void)co_await s->pair(0)->SubmitAsync(std::move(cmd));
      }
    }(&set));
    sim.Run();
    EXPECT_EQ(set.submitted(), 2u);
  }
  // With a device completing commands, slots recycle and all finish.
  {
    sim::Simulation sim;
    QueueSetConfig cfg;
    cfg.sq_depth_cap = 2;
    QueueSet set(&sim, cfg);
    sim.Spawn([](QueueSet* s) -> sim::Task<void> {
      for (int i = 0; i < 5; ++i) {
        auto incoming = co_await s->NextCommand();
        Completion reply;
        co_await s->Complete(std::move(incoming), std::move(reply));
      }
    }(&set));
    sim.Spawn([](QueueSet* s) -> sim::Task<void> {
      std::vector<std::shared_ptr<ReplyState>> states;
      for (int i = 0; i < 5; ++i) {
        Command cmd;
        cmd.opcode = Opcode::kKvStore;
        auto state = co_await s->pair(0)->SubmitAsync(std::move(cmd));
        states.push_back(std::move(state));
      }
      for (auto& state : states) co_await state->done.Wait();
    }(&set));
    sim.Run();
    EXPECT_EQ(set.submitted(), 5u);
    EXPECT_EQ(set.completed(), 5u);
    EXPECT_EQ(set.inflight(), 0u);
  }
}

TEST(SkeyTest, TypedEncodersPreserveOrder) {
  EXPECT_LT(EncodeSecondaryF32(1.5f), EncodeSecondaryF32(2.5f));
  EXPECT_LT(EncodeSecondaryF32(-3.0f), EncodeSecondaryF32(-1.0f));
  EXPECT_LT(EncodeSecondaryF32(-1.0f), EncodeSecondaryF32(1.0f));
  EXPECT_LT(EncodeSecondaryI32(-5), EncodeSecondaryI32(7));
  EXPECT_LT(EncodeSecondaryU64(10), EncodeSecondaryU64(200));
  EXPECT_LT(EncodeSecondaryF64(-0.1), EncodeSecondaryF64(0.1));
}

TEST(SkeyTest, EncodeSecondaryKeyBytesDispatchesOnType) {
  SecondaryIndexSpec spec;
  spec.type = SecondaryKeyType::kF32;
  spec.value_length = 4;
  float f = 42.5f;
  std::string raw(reinterpret_cast<const char*>(&f), 4);
  auto encoded = EncodeSecondaryKeyBytes(Slice(raw), spec);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(*encoded, EncodeSecondaryF32(42.5f));

  // Length mismatch rejected.
  spec.value_length = 8;
  auto bad = EncodeSecondaryKeyBytes(Slice(raw), spec);
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kvcsd::nvme
