// Shard-router semantics (DESIGN.md §15): single-shard degeneracy against
// the plain client, scatter-gather merges with empty shards, limit
// truncation exactly at shard boundaries, deterministic routing across a
// fleet-wide power cycle, and a regression test for the batched-PUT
// admission-window deadlock.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "../testutil.h"
#include "client/client.h"
#include "common/crc32c.h"
#include "common/keys.h"
#include "kvcsd/device.h"
#include "nvme/queue.h"
#include "nvme/skey.h"
#include "router/partitioner.h"
#include "router/sharded_client.h"
#include "sim/parallel.h"

namespace kvcsd::router {
namespace {

using Rows = std::vector<std::pair<std::string, std::string>>;

device::DeviceConfig SmallDevice(const std::string& prefix) {
  device::DeviceConfig c;
  c.zns.zone_size = KiB(256);
  c.zns.num_zones = 64;
  c.zns.nand.channels = 8;
  c.dram_bytes = KiB(512);
  c.write_buffer_bytes = KiB(2);
  c.output_batch_bytes = KiB(16);
  c.stats_prefix = prefix;
  return c;
}

// N single-device stacks (queue set + device + client) behind one router,
// modeled on MultiQueueFixture: every incarnation of every shard stays
// alive in vectors so a RestartAll() can power-cycle the whole fleet over
// the surviving flash.
struct ShardedFixture {
  sim::Simulation sim;
  sim::CpuPool host{&sim, "host", 8};

  struct Shard {
    std::vector<std::unique_ptr<nvme::QueueSet>> sets;
    std::vector<std::unique_ptr<device::Device>> devs;
    std::vector<std::unique_ptr<client::Client>> clients;
  };
  std::vector<std::unique_ptr<Shard>> shards;
  std::function<std::unique_ptr<Partitioner>()> make_partitioner;
  client::ClientConfig client_cfg;
  std::unique_ptr<ShardedClient> routers;

  explicit ShardedFixture(
      std::uint32_t n,
      std::function<std::unique_ptr<Partitioner>()> partitioner =
          [] { return std::make_unique<HashPartitioner>(); },
      client::ClientConfig cc = {})
      : make_partitioner(std::move(partitioner)), client_cfg(std::move(cc)) {
    std::vector<client::Client*> raw;
    for (std::uint32_t i = 0; i < n; ++i) {
      auto shard = std::make_unique<Shard>();
      shard->sets.push_back(
          std::make_unique<nvme::QueueSet>(&sim, QueueConfig(i)));
      shard->devs.push_back(std::make_unique<device::Device>(
          &sim, SmallDevice(Prefix(i)), shard->sets.back().get()));
      shard->devs.back()->Start();
      shard->clients.push_back(MakeClient(*shard, i));
      raw.push_back(shard->clients.back().get());
      shards.push_back(std::move(shard));
    }
    routers = std::make_unique<ShardedClient>(&sim, std::move(raw),
                                              make_partitioner());
  }

  ShardedClient& router() { return *routers; }
  device::Device* dev(std::uint32_t i) { return shards[i]->devs.back().get(); }

  // Power-cycles every shard: fresh queue sets, Device::Restart over the
  // surviving ZNS state, fresh clients, and a new router over them (the
  // partitioner is stateless, so the new instance routes identically).
  // Callers run Recover() on each device afterwards, inside the sim.
  void RestartAll() {
    std::vector<client::Client*> raw;
    for (std::uint32_t i = 0; i < shards.size(); ++i) {
      Shard& s = *shards[i];
      s.sets.push_back(std::make_unique<nvme::QueueSet>(&sim, QueueConfig(i)));
      s.devs.push_back(device::Device::Restart(&sim, SmallDevice(Prefix(i)),
                                               s.sets.back().get(),
                                               *s.devs.back()));
      s.devs.back()->Start();
      s.clients.push_back(MakeClient(s, i));
      raw.push_back(s.clients.back().get());
    }
    routers = std::make_unique<ShardedClient>(&sim, std::move(raw),
                                              make_partitioner());
  }

 private:
  static std::string Prefix(std::uint32_t i) {
    return "shard" + std::to_string(i) + ".";
  }
  nvme::QueueSetConfig QueueConfig(std::uint32_t i) {
    nvme::QueueSetConfig q;
    q.name_prefix = Prefix(i);
    return q;
  }
  std::unique_ptr<client::Client> MakeClient(Shard& shard, std::uint32_t i) {
    client::ClientConfig cc = client_cfg;
    cc.stats_prefix = "client." + Prefix(i);
    return std::make_unique<client::Client>(shard.sets.back().get(), &host,
                                            hostenv::CostModel::Host(), cc);
  }
};

// value = 28 pad bytes + f32 energy (little-endian), the layout the
// "energy" secondary index and pushdown predicates read at offset 28.
std::string EnergyValue(float energy) {
  std::string v(28, 'p');
  char buf[4];
  std::memcpy(buf, &energy, 4);
  v.append(buf, 4);
  return v;
}

std::uint32_t Fingerprint(const Rows& rows) {
  std::uint32_t crc = 0;
  for (const auto& [key, value] : rows) {
    crc = crc32c::Extend(crc, key.data(), key.size());
    crc = crc32c::Extend(crc, value.data(), value.size());
  }
  return crc;
}

// --------------------------------------------------------------------------
// Single-shard degeneracy: a router over one device must be byte-identical
// to the plain client on that device — same scan stream, same secondary
// order, same pushdown matches, same aggregate scalars, same stat. Any
// divergence means the merge/fold layer is editorializing.
// --------------------------------------------------------------------------
TEST(RouterTest, SingleShardMatchesPlainClient) {
  ShardedFixture f(1);
  constexpr std::uint64_t kKeys = 400;
  testutil::RunSim(f.sim, [](ShardedFixture* fx) -> sim::Task<void> {
    auto ks = co_await fx->router().CreateKeyspace("deg");
    KVCSD_CO_ASSERT_OK(ks);
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      KVCSD_CO_ASSERT_OK(co_await ks->Put(
          MakeFixedKey(i), EnergyValue(static_cast<float>((i * 37) % 101))));
    }
    KVCSD_CO_ASSERT_OK(co_await ks->Compact());
    KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
    KVCSD_CO_ASSERT_OK(co_await ks->CreateSecondaryIndexF32("energy", 28));

    // The same keyspace through the plain (unsharded) client.
    auto plain = co_await fx->router().shard(0).OpenKeyspace("deg");
    KVCSD_CO_ASSERT_OK(plain);

    Rows routed, direct;
    KVCSD_CO_ASSERT_OK(co_await ks->Scan("", "\x7f", 0, &routed));
    KVCSD_CO_ASSERT_OK(co_await plain->Scan("", "\x7f", 0, &direct));
    KVCSD_CO_ASSERT(routed.size() == kKeys);
    KVCSD_CO_ASSERT(Fingerprint(routed) == Fingerprint(direct));

    routed.clear();
    direct.clear();
    KVCSD_CO_ASSERT_OK(
        co_await ks->QuerySecondaryRangeF32("energy", 10.f, 60.f, 0, &routed));
    KVCSD_CO_ASSERT_OK(co_await plain->QuerySecondaryRangeF32(
        "energy", 10.f, 60.f, 0, &direct));
    KVCSD_CO_ASSERT(!routed.empty());
    KVCSD_CO_ASSERT(Fingerprint(routed) == Fingerprint(direct));

    client::KeyspaceHandle::SelectOptions opts;
    opts.pred = nvme::PredicateF32(nvme::PredicateOp::kGe, 28, 50.f);
    routed.clear();
    direct.clear();
    KVCSD_CO_ASSERT_OK(co_await ks->Select("", "\x7f", opts, &routed));
    KVCSD_CO_ASSERT_OK(co_await plain->Select("", "\x7f", opts, &direct));
    KVCSD_CO_ASSERT(!routed.empty());
    KVCSD_CO_ASSERT(Fingerprint(routed) == Fingerprint(direct));

    nvme::AggregateSpec sum;
    sum.func = nvme::AggregateFunc::kSum;
    sum.value_offset = 28;
    sum.value_length = 4;
    auto routed_agg = co_await ks->Aggregate("", "\x7f", sum);
    auto direct_agg = co_await plain->Aggregate("", "\x7f", sum);
    KVCSD_CO_ASSERT_OK(routed_agg);
    KVCSD_CO_ASSERT_OK(direct_agg);
    KVCSD_CO_ASSERT(routed_agg->rows == direct_agg->rows);
    KVCSD_CO_ASSERT(routed_agg->sum == direct_agg->sum);
    KVCSD_CO_ASSERT(routed_agg->min == direct_agg->min);
    KVCSD_CO_ASSERT(routed_agg->max == direct_agg->max);

    auto stat = co_await ks->GetStat();
    auto plain_stat = co_await plain->GetStat();
    KVCSD_CO_ASSERT_OK(stat);
    KVCSD_CO_ASSERT_OK(plain_stat);
    KVCSD_CO_ASSERT(stat->num_kvs == plain_stat->num_kvs);
    KVCSD_CO_ASSERT(stat->state == plain_stat->state);
  }(&f));
}

// --------------------------------------------------------------------------
// Empty shard in scatter-gather merges: a RangePartitioner split can leave
// a shard with zero keys, and the k-way merge must treat its exhausted
// stream as a no-op — not an error, not a truncation — for primary scans,
// secondary scans, and limited variants of both.
// --------------------------------------------------------------------------
TEST(RouterTest, EmptyShardInMergedScans) {
  // Shard 0 owns [0, 100), shard 1 owns [100, 200), shard 2 the tail.
  // Keys only land in [0, 100) and [200, 300): shard 1 stays empty.
  ShardedFixture f(3, [] {
    return std::make_unique<RangePartitioner>(
        std::vector<std::string>{MakeFixedKey(100), MakeFixedKey(200)});
  });
  testutil::RunSim(f.sim, [](ShardedFixture* fx) -> sim::Task<void> {
    auto ks = co_await fx->router().CreateKeyspace("holes");
    KVCSD_CO_ASSERT_OK(ks);
    Rows model;
    for (std::uint64_t i = 0; i < 300; ++i) {
      if (i >= 100 && i < 200) continue;
      std::string value = EnergyValue(static_cast<float>(i));
      KVCSD_CO_ASSERT_OK(co_await ks->Put(MakeFixedKey(i), value));
      model.emplace_back(MakeFixedKey(i), std::move(value));
    }
    // Nothing routed to the middle shard.
    KVCSD_CO_ASSERT(fx->router().ShardOf(MakeFixedKey(150)) == 1);
    auto mid_stat = co_await ks->shard_handle(1).GetStat();
    KVCSD_CO_ASSERT_OK(mid_stat);
    KVCSD_CO_ASSERT(mid_stat->num_kvs == 0);

    KVCSD_CO_ASSERT_OK(co_await ks->Compact());
    KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
    KVCSD_CO_ASSERT_OK(co_await ks->CreateSecondaryIndexF32("energy", 28));

    Rows rows;
    KVCSD_CO_ASSERT_OK(co_await ks->Scan("", "\x7f", 0, &rows));
    KVCSD_CO_ASSERT(rows.size() == model.size());
    KVCSD_CO_ASSERT(Fingerprint(rows) == Fingerprint(model));

    // Limited scan spanning the hole: rows 90..109 of the merged stream
    // are keys 90..99 then 200..209.
    rows.clear();
    KVCSD_CO_ASSERT_OK(co_await ks->Scan(MakeFixedKey(90), "\x7f", 20, &rows));
    KVCSD_CO_ASSERT(rows.size() == 20);
    KVCSD_CO_ASSERT(rows[9].first == MakeFixedKey(99));
    KVCSD_CO_ASSERT(rows[10].first == MakeFixedKey(200));

    // Secondary merge over the same population (energy == key id, so the
    // secondary order equals the primary order here — the point is that
    // the empty shard's secondary stream merges cleanly, with a limit).
    rows.clear();
    KVCSD_CO_ASSERT_OK(co_await ks->QuerySecondaryRangeF32(
        "energy", 0.f, 1000.f, 0, &rows));
    KVCSD_CO_ASSERT(Fingerprint(rows) == Fingerprint(model));
    rows.clear();
    KVCSD_CO_ASSERT_OK(co_await ks->QuerySecondaryRangeF32(
        "energy", 95.f, 204.f, 8, &rows));
    KVCSD_CO_ASSERT(rows.size() == 8);
    KVCSD_CO_ASSERT(rows.front().first == MakeFixedKey(95));
    KVCSD_CO_ASSERT(rows.back().first == MakeFixedKey(202));
  }(&f));
}

// --------------------------------------------------------------------------
// Limit exactly at a shard boundary: with a range split at key 50 and a
// limit that exhausts shard 0's stream precisely, the merge must stop at
// the boundary (limit == 50), include exactly one row from the next shard
// (51), and stop one short (49). The secondary variant uses inverted
// energies so the secondary merge order crosses the shards in the
// opposite direction.
// --------------------------------------------------------------------------
TEST(RouterTest, LimitAtShardBoundary) {
  ShardedFixture f(2, [] {
    return std::make_unique<RangePartitioner>(
        std::vector<std::string>{MakeFixedKey(50)});
  });
  constexpr std::uint64_t kKeys = 100;
  testutil::RunSim(f.sim, [](ShardedFixture* fx) -> sim::Task<void> {
    auto ks = co_await fx->router().CreateKeyspace("edge");
    KVCSD_CO_ASSERT_OK(ks);
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      // energy = kKeys-1-i: ascending energy order walks keys 99 -> 0,
      // i.e. shard 1 first, crossing into shard 0 after 50 rows.
      KVCSD_CO_ASSERT_OK(co_await ks->Put(
          MakeFixedKey(i), EnergyValue(static_cast<float>(kKeys - 1 - i))));
    }
    KVCSD_CO_ASSERT_OK(co_await ks->Compact());
    KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
    KVCSD_CO_ASSERT_OK(co_await ks->CreateSecondaryIndexF32("energy", 28));

    // Primary order: shard 0 holds keys 0..49, shard 1 holds 50..99.
    for (std::uint32_t limit : {49u, 50u, 51u}) {
      Rows rows;
      KVCSD_CO_ASSERT_OK(co_await ks->Scan("", "\x7f", limit, &rows));
      KVCSD_CO_ASSERT(rows.size() == limit);
      for (std::uint32_t i = 0; i < limit; ++i) {
        KVCSD_CO_ASSERT(rows[i].first == MakeFixedKey(i));
      }
    }
    // Secondary order: shard 1's 50 rows (keys 99..50) come first.
    for (std::uint32_t limit : {49u, 50u, 51u}) {
      Rows rows;
      KVCSD_CO_ASSERT_OK(co_await ks->QuerySecondaryRangeF32(
          "energy", -1.f, 1000.f, limit, &rows));
      KVCSD_CO_ASSERT(rows.size() == limit);
      for (std::uint32_t i = 0; i < limit; ++i) {
        KVCSD_CO_ASSERT(rows[i].first == MakeFixedKey(kKeys - 1 - i));
      }
    }
  }(&f));
}

// --------------------------------------------------------------------------
// Deterministic routing across a power cycle: the partitioner is pure
// (key, N) -> shard, so a restarted fleet — new queue sets, recovered
// devices, fresh clients, a brand-new router — must find every key where
// the pre-crash router put it, with no placement table to consult.
// --------------------------------------------------------------------------
TEST(RouterTest, RoutingSurvivesFleetRestart) {
  ShardedFixture f(3);
  constexpr std::uint64_t kKeys = 300;
  std::vector<std::uint32_t> placed(kKeys);
  testutil::RunSim(
      f.sim, [](ShardedFixture* fx, std::vector<std::uint32_t>* out)
                 -> sim::Task<void> {
        auto ks = co_await fx->router().CreateKeyspace("cycle");
        KVCSD_CO_ASSERT_OK(ks);
        for (std::uint64_t i = 0; i < kKeys; ++i) {
          (*out)[i] = fx->router().ShardOf(MakeFixedKey(i));
          KVCSD_CO_ASSERT_OK(
              co_await ks->Put(MakeFixedKey(i), "v" + std::to_string(i)));
        }
        KVCSD_CO_ASSERT_OK(co_await ks->Sync());
        KVCSD_CO_ASSERT_OK(co_await ks->Compact());
        KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
      }(&f, &placed));

  f.RestartAll();
  testutil::RunSim(
      f.sim, [](ShardedFixture* fx, const std::vector<std::uint32_t>* expect)
                 -> sim::Task<void> {
        for (std::uint32_t i = 0; i < fx->router().num_shards(); ++i) {
          KVCSD_CO_ASSERT_OK(co_await fx->dev(i)->Recover());
        }
        auto ks = co_await fx->router().OpenKeyspace("cycle");
        KVCSD_CO_ASSERT_OK(ks);
        std::uint64_t total = 0;
        for (std::uint32_t shard = 0; shard < fx->router().num_shards();
             ++shard) {
          auto stat = co_await ks->shard_handle(shard).GetStat();
          KVCSD_CO_ASSERT_OK(stat);
          total += stat->num_kvs;
        }
        KVCSD_CO_ASSERT(total == kKeys);
        for (std::uint64_t i = 0; i < kKeys; ++i) {
          // The new router derives the same placement...
          KVCSD_CO_ASSERT(fx->router().ShardOf(MakeFixedKey(i)) ==
                          (*expect)[i]);
          // ...and the routed read finds the pre-crash value there.
          auto got = co_await ks->Get(MakeFixedKey(i));
          KVCSD_CO_ASSERT_OK(got);
          KVCSD_CO_ASSERT(*got == "v" + std::to_string(i));
        }
      }(&f, &placed));
}

// --------------------------------------------------------------------------
// Regression: concurrent batched PUTs whose combined size exceeds one
// client's admission window (max_inflight). Before the batch gate, each
// CallBatchAsync caller acquired window permits one at a time while
// submitting nothing, so several callers could carve the window up among
// themselves and all park waiting for permits only they were holding.
// Every batch lands on the same shard client to maximize contention.
// --------------------------------------------------------------------------
TEST(RouterTest, ConcurrentBatchesOverflowAdmissionWindow) {
  client::ClientConfig cc;
  cc.max_inflight = 8;  // 6 drivers x 32-pair batches >> 8 permits
  ShardedFixture f(
      1, [] { return std::make_unique<HashPartitioner>(); }, cc);
  constexpr std::uint64_t kDrivers = 6;
  constexpr std::uint64_t kBatches = 4;
  constexpr std::uint64_t kBatchSize = 32;
  testutil::RunSim(f.sim, [](ShardedFixture* fx) -> sim::Task<void> {
    auto ks = co_await fx->router().CreateKeyspace("gate");
    KVCSD_CO_ASSERT_OK(ks);
    auto driver = [](ShardedKeyspaceHandle h,
                     std::uint64_t d) -> sim::Task<Status> {
      for (std::uint64_t b = 0; b < kBatches; ++b) {
        std::vector<std::pair<std::string, std::string>> pairs;
        for (std::uint64_t i = 0; i < kBatchSize; ++i) {
          const std::uint64_t id = (d * kBatches + b) * kBatchSize + i;
          pairs.emplace_back(MakeFixedKey(id), "g" + std::to_string(id));
        }
        auto futures = co_await h.PutBatchAsync(std::move(pairs));
        for (auto& future : futures) {
          Status s = co_await future.Await();
          if (!s.ok()) co_return s;
        }
      }
      co_return Status::Ok();
    };
    sim::TaskGroup group(&fx->sim);
    for (std::uint64_t d = 0; d < kDrivers; ++d) {
      group.Spawn(driver(*ks, d));
    }
    KVCSD_CO_ASSERT_OK(co_await group.Wait());

    KVCSD_CO_ASSERT_OK(co_await ks->Compact());
    KVCSD_CO_ASSERT_OK(co_await ks->WaitCompaction());
    auto stat = co_await ks->GetStat();
    KVCSD_CO_ASSERT_OK(stat);
    KVCSD_CO_ASSERT(stat->num_kvs == kDrivers * kBatches * kBatchSize);
  }(&f));
}

}  // namespace
}  // namespace kvcsd::router
