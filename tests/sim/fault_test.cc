#include "sim/fault.h"

#include <gtest/gtest.h>

namespace kvcsd::sim {
namespace {

TEST(FaultInjectorTest, CountsHitsWhileUnarmed) {
  FaultInjector faults;
  EXPECT_FALSE(faults.Hit("flush.after_klog"));
  EXPECT_FALSE(faults.Hit("flush.after_klog"));
  EXPECT_FALSE(faults.Hit("meta.after_append"));
  EXPECT_FALSE(faults.crashed());
  EXPECT_EQ(faults.hits(), 3u);
  EXPECT_EQ(faults.hit_count("flush.after_klog"), 2u);
  EXPECT_EQ(faults.hit_count("meta.after_append"), 1u);
  EXPECT_EQ(faults.hit_count("never.seen"), 0u);
  ASSERT_EQ(faults.points().size(), 2u);
  EXPECT_EQ(faults.points()[0], "flush.after_klog");  // first-hit order
  EXPECT_EQ(faults.points()[1], "meta.after_append");
}

TEST(FaultInjectorTest, ArmsCrashAtNamedPointNthPass) {
  FaultInjector faults;
  faults.ArmCrashAtPoint("compact.before_commit", 2);
  EXPECT_FALSE(faults.Hit("compact.before_commit"));
  EXPECT_FALSE(faults.Hit("meta.after_append"));
  EXPECT_TRUE(faults.Hit("compact.before_commit"));
  EXPECT_TRUE(faults.crashed());
  EXPECT_EQ(faults.crash_point(), "compact.before_commit");
  // After the crash every pass reports crashed and counting stops.
  EXPECT_TRUE(faults.Hit("meta.after_append"));
  EXPECT_EQ(faults.hits(), 3u);
}

TEST(FaultInjectorTest, ArmsCrashAtGlobalHitIndex) {
  FaultInjector faults;
  faults.ArmCrashAtHit(3);
  EXPECT_FALSE(faults.Hit("a"));
  EXPECT_FALSE(faults.Hit("b"));
  EXPECT_TRUE(faults.Hit("c"));
  EXPECT_TRUE(faults.crashed());
  EXPECT_EQ(faults.crash_point(), "c");
}

TEST(FaultInjectorTest, CrashHooksRunExactlyOnce) {
  FaultInjector faults;
  int runs = 0;
  faults.AddCrashHook([&runs] { ++runs; });
  faults.Crash();
  faults.Crash();  // idempotent
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(faults.crashed());
  EXPECT_EQ(faults.crash_point(), "");  // manual crash has no point name
}

TEST(FaultInjectorTest, PowerOffFailsEveryIo) {
  FaultInjector faults;
  EXPECT_TRUE(faults.OnIo(FaultOp::kAppend, 0).ok());
  faults.Crash();
  const Status s = faults.OnIo(FaultOp::kRead, 7);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(FaultInjectorTest, ErrorRuleHonorsSkipAndTimes) {
  FaultInjector faults;
  ErrorRule rule;
  rule.op = FaultOp::kAppend;
  rule.skip = 2;
  rule.times = 2;
  faults.AddErrorRule(rule);
  EXPECT_TRUE(faults.OnIo(FaultOp::kAppend, 0).ok());   // skipped
  EXPECT_TRUE(faults.OnIo(FaultOp::kAppend, 0).ok());   // skipped
  EXPECT_FALSE(faults.OnIo(FaultOp::kAppend, 0).ok());  // injected
  EXPECT_FALSE(faults.OnIo(FaultOp::kAppend, 0).ok());  // injected
  EXPECT_TRUE(faults.OnIo(FaultOp::kAppend, 0).ok());   // budget spent
  EXPECT_EQ(faults.errors_injected(), 2u);
  // Other operations never matched the rule.
  EXPECT_TRUE(faults.OnIo(FaultOp::kReset, 0).ok());
}

TEST(FaultInjectorTest, ErrorRuleFiltersByZone) {
  FaultInjector faults;
  ErrorRule rule;
  rule.op = FaultOp::kRead;
  rule.zone = 5;
  rule.times = 0;  // unlimited
  rule.code = StatusCode::kCorruption;
  faults.AddErrorRule(rule);
  EXPECT_TRUE(faults.OnIo(FaultOp::kRead, 4).ok());
  const Status s = faults.OnIo(FaultOp::kRead, 5);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_FALSE(faults.OnIo(FaultOp::kRead, 5).ok());
}

TEST(FaultInjectorTest, ZeroProbabilityRuleNeverFires) {
  FaultInjector faults(1234);
  ErrorRule rule;
  rule.op = FaultOp::kAppend;
  rule.probability = 0.0;
  rule.times = 0;
  faults.AddErrorRule(rule);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(faults.OnIo(FaultOp::kAppend, 0).ok());
  }
  EXPECT_EQ(faults.errors_injected(), 0u);
}

TEST(FaultInjectorTest, ResetForRestartKeepsHistoryDropsArming) {
  FaultInjector faults;
  int hook_runs = 0;
  faults.AddCrashHook([&hook_runs] { ++hook_runs; });
  ErrorRule rule;
  rule.op = FaultOp::kAppend;
  faults.AddErrorRule(rule);
  faults.ArmCrashAtHit(1);
  EXPECT_TRUE(faults.Hit("meta.before_reset"));
  EXPECT_EQ(hook_runs, 1);

  faults.ResetForRestart();
  EXPECT_FALSE(faults.crashed());
  // History survives for post-mortem inspection...
  EXPECT_EQ(faults.hits(), 1u);
  EXPECT_EQ(faults.crash_point(), "meta.before_reset");
  // ...but arming, rules, and hooks are gone: I/O is live again.
  EXPECT_FALSE(faults.Hit("meta.before_reset"));
  EXPECT_TRUE(faults.OnIo(FaultOp::kAppend, 0).ok());
  EXPECT_EQ(hook_runs, 1);
}

}  // namespace
}  // namespace kvcsd::sim
