#include "sim/log.h"

#include <gtest/gtest.h>

#include <string>

namespace kvcsd::sim {
namespace {

TEST(LogTest, LevelNames) {
  EXPECT_EQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_EQ(LogLevelName(LogLevel::kWarn), "WARN");
  EXPECT_EQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST(LogTest, EntriesStampedWithBoundClock) {
  Log log;
  Tick now = 0;
  log.BindClock([&now] { return now; });
  now = 123;
  log.Info("device", "first");
  now = 456;
  log.Warn("recovery", "second");

  ASSERT_EQ(log.entries().size(), 2u);
  EXPECT_EQ(log.entries()[0].tick, 123u);
  EXPECT_EQ(log.entries()[0].level, LogLevel::kInfo);
  EXPECT_EQ(log.entries()[0].component, "device");
  EXPECT_EQ(log.entries()[0].message, "first");
  EXPECT_EQ(log.entries()[1].tick, 456u);
  EXPECT_EQ(log.entries()[1].level, LogLevel::kWarn);
}

TEST(LogTest, MinLevelFilters) {
  Log log;
  log.set_min_level(LogLevel::kWarn);
  log.Debug("x", "dropped");
  log.Info("x", "dropped");
  log.Warn("x", "kept");
  log.Error("x", "kept");
  EXPECT_EQ(log.entries().size(), 2u);
  EXPECT_EQ(log.total_written(), 2u);
}

TEST(LogTest, RingEvictsOldestButKeepsSequence) {
  Log log;
  log.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    log.Info("ring", "entry " + std::to_string(i));
  }
  ASSERT_EQ(log.entries().size(), 4u);
  EXPECT_EQ(log.total_written(), 10u);
  // Oldest-first view of the last 4 writes; seq survives eviction.
  EXPECT_EQ(log.entries().front().seq, 6u);
  EXPECT_EQ(log.entries().front().message, "entry 6");
  EXPECT_EQ(log.entries().back().seq, 9u);
}

TEST(LogTest, ShrinkingCapacityDropsOldest) {
  Log log;
  for (int i = 0; i < 8; ++i) log.Info("x", std::to_string(i));
  log.set_capacity(2);
  ASSERT_EQ(log.entries().size(), 2u);
  EXPECT_EQ(log.entries().front().message, "6");
}

TEST(LogTest, ToStringFormatsOneLinePerEntry) {
  Log log;
  Tick now = 1500;
  log.BindClock([&now] { return now; });
  log.Error("fault", "power cut");
  const std::string text = log.ToString();
  EXPECT_NE(text.find("1500 ns"), std::string::npos);
  EXPECT_NE(text.find("ERROR"), std::string::npos);
  EXPECT_NE(text.find("fault: power cut"), std::string::npos);
}

TEST(LogTest, ClearResets) {
  Log log;
  log.Info("x", "y");
  log.Clear();
  EXPECT_TRUE(log.entries().empty());
  EXPECT_EQ(log.total_written(), 0u);
}

}  // namespace
}  // namespace kvcsd::sim
