#include "sim/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace kvcsd::sim {
namespace {

TEST(TaskGroupTest, WaitJoinsAllSpawnedTasks) {
  Simulation sim;
  std::vector<Tick> finished;
  sim.Spawn([](Simulation* s, std::vector<Tick>* log) -> Task<void> {
    TaskGroup group(s);
    auto worker = [](Simulation* sm, Tick delay,
                     std::vector<Tick>* out) -> Task<Status> {
      co_await sm->Delay(delay);
      out->push_back(sm->Now());
      co_return Status::Ok();
    };
    group.Spawn(worker(s, 300, log));
    group.Spawn(worker(s, 100, log));
    group.Spawn(worker(s, 200, log));
    Status result = co_await group.Wait();
    EXPECT_TRUE(result.ok());
    // Join happened after the slowest worker.
    EXPECT_EQ(s->Now(), 300u);
  }(&sim, &finished));
  sim.Run();
  ASSERT_EQ(finished.size(), 3u);
  EXPECT_TRUE(std::is_sorted(finished.begin(), finished.end()));
}

TEST(TaskGroupTest, FirstErrorIsReported) {
  Simulation sim;
  sim.Spawn([](Simulation* s) -> Task<void> {
    TaskGroup group(s);
    auto worker = [](Simulation* sm, Tick delay, Status st) -> Task<Status> {
      co_await sm->Delay(delay);
      co_return st;
    };
    group.Spawn(worker(s, 50, Status::Ok()));
    group.Spawn(worker(s, 20, Status::IoError("second")));
    group.Spawn(worker(s, 10, Status::Corruption("first")));
    Status result = co_await group.Wait();
    // First error in completion order wins.
    EXPECT_EQ(result.code(), StatusCode::kCorruption);
  }(&sim));
  sim.Run();
}

TEST(ParallelForTest, VisitsEveryIndexAndBoundsConcurrency) {
  Simulation sim;
  struct State {
    Simulation* sim = nullptr;
    int active = 0;
    int max_active = 0;
    std::vector<std::size_t> visited;
  } state;
  state.sim = &sim;
  sim.Spawn([](State* st) -> Task<void> {
    auto fn = [st](std::size_t i) -> Task<Status> {
      ++st->active;
      st->max_active = std::max(st->max_active, st->active);
      co_await st->sim->Delay(10);
      st->visited.push_back(i);
      --st->active;
      co_return Status::Ok();
    };
    Status s = co_await ParallelFor(st->sim, 10, 3, fn);
    EXPECT_TRUE(s.ok());
  }(&state));
  sim.Run();
  EXPECT_EQ(state.visited.size(), 10u);
  EXPECT_EQ(state.max_active, 3);
  std::vector<std::size_t> sorted = state.visited;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(ParallelForTest, SingleWorkerRunsSequentiallyInOrder) {
  Simulation sim;
  struct State {
    Simulation* sim = nullptr;
    std::vector<std::size_t> visited;
  } state;
  state.sim = &sim;
  sim.Spawn([](State* st) -> Task<void> {
    auto fn = [st](std::size_t i) -> Task<Status> {
      co_await st->sim->Delay(1);
      st->visited.push_back(i);
      co_return Status::Ok();
    };
    EXPECT_TRUE((co_await ParallelFor(st->sim, 5, 1, fn)).ok());
  }(&state));
  sim.Run();
  EXPECT_EQ(state.visited, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ErrorStopsClaimingFurtherIndexes) {
  Simulation sim;
  struct State {
    Simulation* sim = nullptr;
    std::vector<std::size_t> started;
  } state;
  state.sim = &sim;
  sim.Spawn([](State* st) -> Task<void> {
    auto fn = [st](std::size_t i) -> Task<Status> {
      st->started.push_back(i);
      co_await st->sim->Delay(1);
      if (i == 2) co_return Status::IoError("boom");
      co_return Status::Ok();
    };
    Status s = co_await ParallelFor(st->sim, 100, 1, fn);
    EXPECT_EQ(s.code(), StatusCode::kIoError);
  }(&state));
  sim.Run();
  // Sequential worker: indexes 0..2 ran, everything after the failure was
  // never claimed.
  EXPECT_EQ(state.started, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(BoundedChannelTest, PushBlocksAtCapacity) {
  Simulation sim;
  struct State {
    Simulation* sim = nullptr;
    BoundedChannel<int>* ch = nullptr;
    std::vector<Tick> push_times;
    std::vector<int> popped;
  } state;
  BoundedChannel<int> ch(&sim, 1);
  state.sim = &sim;
  state.ch = &ch;
  sim.Spawn([](State* st) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await st->ch->Push(i);
      st->push_times.push_back(st->sim->Now());
    }
    st->ch->Close();
  }(&state));
  sim.Spawn([](State* st) -> Task<void> {
    for (;;) {
      co_await st->sim->Delay(100);
      auto item = co_await st->ch->Pop();
      if (!item.has_value()) break;
      st->popped.push_back(*item);
    }
  }(&state));
  sim.Run();
  EXPECT_EQ(state.popped, (std::vector<int>{0, 1, 2}));
  ASSERT_EQ(state.push_times.size(), 3u);
  // First push is immediate; each later push had to wait for a pop.
  EXPECT_EQ(state.push_times[0], 0u);
  EXPECT_EQ(state.push_times[1], 100u);
  EXPECT_EQ(state.push_times[2], 200u);
}

TEST(BoundedChannelTest, CloseDrainsQueuedItemsThenSignalsEnd) {
  Simulation sim;
  struct State {
    BoundedChannel<std::string>* ch = nullptr;
    std::vector<std::string> popped;
    int end_signals = 0;
  } state;
  BoundedChannel<std::string> ch(&sim, 4);
  state.ch = &ch;
  sim.Spawn([](State* st) -> Task<void> {
    co_await st->ch->Push("a");
    co_await st->ch->Push("b");
    st->ch->Close();
  }(&state));
  // Two consumers: queued items are delivered, then BOTH see end-of-stream
  // (Close's wake token is re-released by each finishing popper).
  for (int c = 0; c < 2; ++c) {
    sim.Spawn([](State* st) -> Task<void> {
      for (;;) {
        auto item = co_await st->ch->Pop();
        if (!item.has_value()) {
          ++st->end_signals;
          co_return;
        }
        st->popped.push_back(*item);
      }
    }(&state));
  }
  sim.Run();
  EXPECT_EQ(state.popped, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(state.end_signals, 2);
}

}  // namespace
}  // namespace kvcsd::sim
