#include "sim/resources.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/sync.h"

namespace kvcsd::sim {
namespace {

TEST(BandwidthResourceTest, SingleTransferTime) {
  Simulation sim;
  // 1 GB/s, 2us latency; 1 MiB transfer -> 1048576ns service + 2000ns.
  BandwidthResource pipe(&sim, "pipe", 1e9, Microseconds(2));
  Tick done = 0;
  sim.Spawn([](Simulation* s, BandwidthResource* p, Tick* out) -> Task<void> {
    co_await p->Transfer(MiB(1));
    *out = s->Now();
  }(&sim, &pipe, &done));
  sim.Run();
  EXPECT_EQ(done, Microseconds(2) + 1048576u);
  EXPECT_EQ(pipe.total_bytes(), MiB(1));
  EXPECT_EQ(pipe.total_ops(), 1u);
}

TEST(BandwidthResourceTest, ConcurrentTransfersSerialize) {
  Simulation sim;
  BandwidthResource pipe(&sim, "pipe", 1e9, 0);
  std::vector<Tick> done_times;
  auto xfer = [](Simulation* s, BandwidthResource* p,
                 std::vector<Tick>* log) -> Task<void> {
    co_await p->Transfer(1000);  // 1000 ns service at 1 GB/s
    log->push_back(s->Now());
  };
  for (int i = 0; i < 4; ++i) sim.Spawn(xfer(&sim, &pipe, &done_times));
  sim.Run();
  EXPECT_EQ(done_times, (std::vector<Tick>{1000, 2000, 3000, 4000}));
  EXPECT_EQ(pipe.busy_time(), 4000u);
}

TEST(BandwidthResourceTest, LatencyPipelines) {
  // With a large per-op latency, back-to-back small transfers should pay
  // the latency concurrently: completion gap equals the service time.
  Simulation sim;
  BandwidthResource pipe(&sim, "pipe", 1e9, Microseconds(100));
  std::vector<Tick> done_times;
  auto xfer = [](Simulation* s, BandwidthResource* p,
                 std::vector<Tick>* log) -> Task<void> {
    co_await p->Transfer(1000);
    log->push_back(s->Now());
  };
  for (int i = 0; i < 3; ++i) sim.Spawn(xfer(&sim, &pipe, &done_times));
  sim.Run();
  ASSERT_EQ(done_times.size(), 3u);
  EXPECT_EQ(done_times[1] - done_times[0], 1000u);
  EXPECT_EQ(done_times[2] - done_times[1], 1000u);
  EXPECT_EQ(done_times[0], Microseconds(100) + 1000u);
}

TEST(BandwidthResourceTest, ZeroByteTransferPaysOnlyLatency) {
  Simulation sim;
  BandwidthResource pipe(&sim, "pipe", 1e9, Microseconds(5));
  Tick done = 0;
  sim.Spawn([](Simulation* s, BandwidthResource* p, Tick* out) -> Task<void> {
    co_await p->Transfer(0);
    *out = s->Now();
  }(&sim, &pipe, &done));
  sim.Run();
  EXPECT_EQ(done, Microseconds(5));
}

TEST(CpuPoolTest, ParallelSpeedup) {
  // 8 jobs of 100ns: on 1 core -> 800ns; on 4 cores -> 200ns.
  for (auto [cores, expected] :
       std::vector<std::pair<std::uint32_t, Tick>>{{1, 800}, {4, 200},
                                                   {8, 100}, {16, 100}}) {
    Simulation sim;
    CpuPool pool(&sim, "cpu", cores);
    auto job = [](CpuPool* p) -> Task<void> { co_await p->Compute(100); };
    for (int i = 0; i < 8; ++i) sim.Spawn(job(&pool));
    sim.Run();
    EXPECT_EQ(sim.Now(), expected) << "cores=" << cores;
  }
}

TEST(CpuPoolTest, BusyTimeAccounting) {
  Simulation sim;
  CpuPool pool(&sim, "cpu", 2);
  auto job = [](CpuPool* p, Tick cost) -> Task<void> {
    co_await p->Compute(cost);
  };
  sim.Spawn(job(&pool, 100));
  sim.Spawn(job(&pool, 300));
  sim.Run();
  EXPECT_EQ(pool.busy_time(), 400u);
  EXPECT_EQ(sim.Now(), 300u);
  EXPECT_DOUBLE_EQ(pool.average_load(), 400.0 / 300.0);
}

TEST(CpuPoolTest, ComputeBytesUsesRate) {
  Simulation sim;
  CpuPool pool(&sim, "cpu", 1);
  sim.Spawn([](CpuPool* p) -> Task<void> {
    co_await p->ComputeBytes(1000, 1e9);  // 1000 bytes at 1 GB/s = 1000ns
  }(&pool));
  sim.Run();
  EXPECT_EQ(sim.Now(), 1000u);
}

TEST(CpuPoolTest, ForegroundBlockedByBackgroundSharingPool) {
  // The write-stall mechanism in miniature: a background task hogging the
  // only core delays a foreground task; with a second core it does not.
  for (auto [cores, expected_fg] :
       std::vector<std::pair<std::uint32_t, Tick>>{{1, 1100}, {2, 150}}) {
    Simulation sim;
    CpuPool pool(&sim, "cpu", cores);
    Tick fg_done = 0;
    sim.Spawn([](CpuPool* p) -> Task<void> {
      co_await p->Compute(1000);  // background hog
    }(&pool));
    sim.Spawn([](Simulation* s, CpuPool* p, Tick* out) -> Task<void> {
      co_await s->Delay(50);  // arrives while background is running
      co_await p->Compute(100);
      *out = s->Now();
    }(&sim, &pool, &fg_done));
    sim.Run();
    EXPECT_EQ(fg_done, expected_fg) << "cores=" << cores;
  }
}

namespace {
// Advances the simulation clock to `when` (events only move time forward).
void AdvanceTo(Simulation* sim, Tick when) {
  sim->Spawn([](Simulation* s, Tick target) -> Task<void> {
    co_await s->Delay(target - s->Now());
  }(sim, when));
  sim->Run();
  ASSERT_EQ(sim->Now(), when);
}
}  // namespace

TEST(ResourceMeterTest, UtilizationStableAtZeroElapsed) {
  Simulation sim;
  ResourceMeter m(&sim, "soc", 4.0, /*window=*/100);
  // t=0: zero ticks of the window have elapsed. The meter must report a
  // stable 0.0, not 0/0 — this was the early-tick NaN gauge regression.
  EXPECT_EQ(m.utilization(), 0.0);
  m.Add(Activity::kHostWrite, 10);
  EXPECT_EQ(m.utilization(), 0.0);

  // Exactly at a window rotation the elapsed-in-window is again zero.
  AdvanceTo(&sim, 100);
  EXPECT_EQ(m.utilization(), 0.0);

  // One tick into the window the ratio is finite and well-defined again.
  AdvanceTo(&sim, 101);
  m.Add(Activity::kHostWrite, 2);
  EXPECT_DOUBLE_EQ(m.utilization(), 2.0 / (4.0 * 1.0));
}

TEST(ResourceMeterTest, AttributesBusyTimePerClassAcrossWindows) {
  Simulation sim;
  ResourceMeter m(&sim, "soc", 2.0, /*window=*/100);
  m.Add(Activity::kHostWrite, 60);
  m.Add(Activity::kCompact, 20);
  m.Add(Activity::kHostWrite, 10);

  // From the next window, window 0 is the "last completed" one.
  AdvanceTo(&sim, 150);
  EXPECT_DOUBLE_EQ(m.WindowLoad(Activity::kHostWrite), 0.7);
  EXPECT_DOUBLE_EQ(m.WindowLoad(Activity::kCompact), 0.2);
  EXPECT_DOUBLE_EQ(m.WindowLoad(Activity::kPushdown), 0.0);

  // Gauges are permille-of-window per class plus capacity x 1000.
  std::vector<std::pair<std::string, std::uint64_t>> gauges;
  m.AppendGauges(&gauges);
  std::uint64_t host_write = 0, capacity = 0;
  for (const auto& [name, value] : gauges) {
    if (name == "util.soc.host_write") host_write = value;
    if (name == "util.soc.capacity") capacity = value;
  }
  EXPECT_EQ(host_write, 700u);
  EXPECT_EQ(capacity, 2000u);

  // Idle for a full window: the stale window must not be reported as
  // recent load.
  AdvanceTo(&sim, 400);
  EXPECT_DOUBLE_EQ(m.WindowLoad(Activity::kHostWrite), 0.0);
  EXPECT_DOUBLE_EQ(m.WindowLoad(Activity::kCompact), 0.0);
}

TEST(CpuPoolTest, ComputeMetersActivityClass) {
  Simulation sim;
  CpuPool pool(&sim, "soc", 2);
  sim.Spawn([](CpuPool* p) -> Task<void> {
    co_await p->Compute(40, Activity::kCompact);
    co_await p->Compute(30, Activity::kHostRead);
  }(&pool));
  sim.Run();
  EXPECT_EQ(sim.Now(), 70u);
  AdvanceTo(&sim, ResourceMeter::kDefaultWindow);
  EXPECT_DOUBLE_EQ(
      pool.meter().WindowLoad(Activity::kCompact),
      40.0 / static_cast<double>(ResourceMeter::kDefaultWindow));
  EXPECT_DOUBLE_EQ(
      pool.meter().WindowLoad(Activity::kHostRead),
      30.0 / static_cast<double>(ResourceMeter::kDefaultWindow));
  EXPECT_DOUBLE_EQ(pool.meter().WindowLoad(Activity::kHostWrite), 0.0);
}

}  // namespace
}  // namespace kvcsd::sim
