#include "sim/stats.h"

#include <gtest/gtest.h>

namespace kvcsd::sim {
namespace {

TEST(CounterTest, AccumulatesAndResets) {
  Counter c;
  c.Add(10);
  c.Increment();
  EXPECT_EQ(c.value(), 11u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(HistogramTest, BasicMoments) {
  Histogram h;
  for (std::uint64_t v : {1u, 2u, 3u, 4u, 5u}) h.Record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 15u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(HistogramTest, PercentilesBracketed) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<std::uint64_t>(i));
  // log2 buckets give coarse percentiles; check they are sane.
  EXPECT_GE(h.Percentile(50), 256.0);
  EXPECT_LE(h.Percentile(50), 1000.0);
  EXPECT_GE(h.Percentile(99), h.Percentile(50));
  EXPECT_LE(h.Percentile(100), 1000.0);
}

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, ZeroAndHugeValues) {
  Histogram h;
  h.Record(0);
  h.Record(UINT64_MAX);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), UINT64_MAX);
}

TEST(StatsTest, RegistryIsStableAndNamed) {
  Stats stats;
  Counter& a = stats.counter("ssd.bytes_written");
  a.Add(4096);
  Counter& again = stats.counter("ssd.bytes_written");
  EXPECT_EQ(&a, &again);
  EXPECT_EQ(stats.counter_value("ssd.bytes_written"), 4096u);
  EXPECT_EQ(stats.counter_value("missing"), 0u);
  EXPECT_TRUE(stats.has_counter("ssd.bytes_written"));
  EXPECT_FALSE(stats.has_counter("missing"));
}

TEST(StatsTest, ToStringFiltersByPrefix) {
  Stats stats;
  stats.counter("fs.reads").Add(1);
  stats.counter("ssd.reads").Add(2);
  std::string fs_only = stats.ToString("fs.");
  EXPECT_NE(fs_only.find("fs.reads"), std::string::npos);
  EXPECT_EQ(fs_only.find("ssd.reads"), std::string::npos);
}

TEST(StatsTest, ResetClearsEverything) {
  Stats stats;
  stats.counter("x").Add(5);
  stats.histogram("h").Record(9);
  stats.Reset();
  EXPECT_EQ(stats.counter_value("x"), 0u);
  EXPECT_EQ(stats.histogram("h").count(), 0u);
}

}  // namespace
}  // namespace kvcsd::sim
