#include "sim/stats.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace kvcsd::sim {
namespace {

TEST(CounterTest, AccumulatesAndResets) {
  Counter c;
  c.Add(10);
  c.Increment();
  EXPECT_EQ(c.value(), 11u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(HistogramTest, BasicMoments) {
  Histogram h;
  for (std::uint64_t v : {1u, 2u, 3u, 4u, 5u}) h.Record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 15u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(HistogramTest, PercentilesBracketed) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<std::uint64_t>(i));
  EXPECT_GE(h.Percentile(50), 256.0);
  EXPECT_LE(h.Percentile(50), 1000.0);
  EXPECT_GE(h.Percentile(99), h.Percentile(50));
  EXPECT_LE(h.Percentile(100), 1000.0);
}

// Regression pin for the log-linear buckets (16 sub-buckets per octave,
// ~6.25% relative resolution): a uniform 1..100000 distribution has known
// exact percentiles, and every estimate must land within one sub-bucket's
// relative error of the truth. The old pure-log2 buckets were off by up
// to ~40% here — if this starts failing, the bucketing regressed.
TEST(HistogramTest, LogLinearPercentilesOnKnownDistribution) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) h.Record(v);
  EXPECT_NEAR(h.Percentile(50), 50000.0, 0.07 * 50000.0);
  EXPECT_NEAR(h.Percentile(99), 99000.0, 0.07 * 99000.0);
  EXPECT_NEAR(h.Percentile(99.9), 99900.0, 0.07 * 99900.0);
}

TEST(HistogramTest, SmallValuesHaveExactBuckets) {
  Histogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.Record(v);
  // Values below 16 each get their own bucket, so the median of 0..15
  // cannot smear beyond its neighbors.
  EXPECT_NEAR(h.Percentile(50), 8.0, 1.5);
  EXPECT_NEAR(h.Percentile(100), 15.0, 1.0);
}

TEST(HistogramTest, SummaryMatchesAccessors) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const HistogramSummary s = h.Summary();
  EXPECT_EQ(s.count, h.count());
  EXPECT_EQ(s.sum, h.sum());
  EXPECT_EQ(s.min, h.min());
  EXPECT_EQ(s.max, h.max());
  EXPECT_DOUBLE_EQ(s.mean, h.mean());
  EXPECT_DOUBLE_EQ(s.p50, h.Percentile(50));
  EXPECT_DOUBLE_EQ(s.p95, h.Percentile(95));
  EXPECT_DOUBLE_EQ(s.p99, h.Percentile(99));
  EXPECT_DOUBLE_EQ(s.p999, h.Percentile(99.9));
}

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, ZeroAndHugeValues) {
  Histogram h;
  h.Record(0);
  h.Record(UINT64_MAX);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), UINT64_MAX);
}

TEST(HistogramTest, PercentileSingleValue) {
  Histogram h;
  h.Record(42);
  // Every percentile of a one-sample histogram lands in its bucket.
  EXPECT_GT(h.Percentile(0), 0.0);
  EXPECT_GE(h.Percentile(50), 32.0);
  EXPECT_LE(h.Percentile(50), 64.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), h.Percentile(99));
}

TEST(HistogramTest, PercentileAllIdenticalValues) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(1000);
  EXPECT_DOUBLE_EQ(h.Percentile(1), h.Percentile(99));
  EXPECT_GE(h.Percentile(99), 512.0);
  EXPECT_LE(h.Percentile(99), 2048.0);
}

TEST(HistogramTest, PercentileClampsOutOfRangeRequests) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 64; ++v) h.Record(v);
  EXPECT_GE(h.Percentile(200), h.Percentile(100));
  EXPECT_LE(h.Percentile(-5), h.Percentile(1));
}

TEST(HistogramTest, PercentileIsMonotoneInP) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100000; v += 7) h.Record(v);
  double prev = 0.0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    const double cur = h.Percentile(p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
}

// The instrumented hot paths (NVMe dispatch, ZNS accounting) hammer the
// same counters and histograms from concurrent std::threads in tests and
// tools; totals must not lose updates.
TEST(StatsTest, ConcurrentRecordingLosesNothing) {
  Stats stats;
  Counter& counter = stats.counter("stress.ops");
  Histogram& hist = stats.histogram("stress.lat_ns");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, &hist, t] {
      for (std::uint64_t i = 1; i <= kPerThread; ++i) {
        counter.Add(2);
        hist.Record(i + static_cast<std::uint64_t>(t));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(counter.value(), 2 * kThreads * kPerThread);
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  EXPECT_EQ(hist.min(), 1u);
  EXPECT_EQ(hist.max(), kPerThread + kThreads - 1);
  // Sum of t..(kPerThread+t) over all threads.
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 1; i <= kPerThread; ++i) {
      expected_sum += i + static_cast<std::uint64_t>(t);
    }
  }
  EXPECT_EQ(hist.sum(), expected_sum);
}

TEST(StatsTest, RegistryIsStableAndNamed) {
  Stats stats;
  Counter& a = stats.counter("ssd.bytes_written");
  a.Add(4096);
  Counter& again = stats.counter("ssd.bytes_written");
  EXPECT_EQ(&a, &again);
  EXPECT_EQ(stats.counter_value("ssd.bytes_written"), 4096u);
  EXPECT_EQ(stats.counter_value("missing"), 0u);
  EXPECT_TRUE(stats.has_counter("ssd.bytes_written"));
  EXPECT_FALSE(stats.has_counter("missing"));
}

TEST(StatsTest, ToStringFiltersByPrefix) {
  Stats stats;
  stats.counter("fs.reads").Add(1);
  stats.counter("ssd.reads").Add(2);
  std::string fs_only = stats.ToString("fs.");
  EXPECT_NE(fs_only.find("fs.reads"), std::string::npos);
  EXPECT_EQ(fs_only.find("ssd.reads"), std::string::npos);
}

TEST(StatsTest, ResetClearsEverything) {
  Stats stats;
  stats.counter("x").Add(5);
  stats.histogram("h").Record(9);
  stats.Reset();
  EXPECT_EQ(stats.counter_value("x"), 0u);
  EXPECT_EQ(stats.histogram("h").count(), 0u);
}

}  // namespace
}  // namespace kvcsd::sim
