#include "sim/sync.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace kvcsd::sim {
namespace {

TEST(EventTest, WaitersResumeOnSet) {
  Simulation sim;
  Event ev(&sim);
  std::vector<Tick> wake_times;
  auto waiter = [](Simulation* s, Event* e, std::vector<Tick>* log)
      -> Task<void> {
    co_await e->Wait();
    log->push_back(s->Now());
  };
  for (int i = 0; i < 3; ++i) sim.Spawn(waiter(&sim, &ev, &wake_times));
  sim.Spawn([](Simulation* s, Event* e) -> Task<void> {
    co_await s->Delay(500);
    e->Set();
  }(&sim, &ev));
  sim.Run();
  ASSERT_EQ(wake_times.size(), 3u);
  for (Tick t : wake_times) EXPECT_EQ(t, 500u);
}

TEST(EventTest, WaitAfterSetIsImmediate) {
  Simulation sim;
  Event ev(&sim);
  ev.Set();
  Tick woke = 999;
  sim.Spawn([](Simulation* s, Event* e, Tick* out) -> Task<void> {
    co_await s->Delay(10);
    co_await e->Wait();
    *out = s->Now();
  }(&sim, &ev, &woke));
  sim.Run();
  EXPECT_EQ(woke, 10u);
}

TEST(EventTest, ResetReArms) {
  Simulation sim;
  Event ev(&sim);
  ev.Set();
  ev.Reset();
  EXPECT_FALSE(ev.is_set());
}

TEST(WaitGroupTest, WaitBlocksUntilAllDone) {
  Simulation sim;
  WaitGroup wg(&sim);
  wg.Add(3);
  auto worker = [](Simulation* s, WaitGroup* g, Tick cost) -> Task<void> {
    co_await s->Delay(cost);
    g->Done();
  };
  sim.Spawn(worker(&sim, &wg, 100));
  sim.Spawn(worker(&sim, &wg, 300));
  sim.Spawn(worker(&sim, &wg, 200));
  Tick finished = 0;
  sim.Spawn([](Simulation* s, WaitGroup* g, Tick* out) -> Task<void> {
    co_await g->Wait();
    *out = s->Now();
  }(&sim, &wg, &finished));
  sim.Run();
  EXPECT_EQ(finished, 300u);
  EXPECT_EQ(wg.count(), 0);
}

TEST(WaitGroupTest, WaitOnZeroCountIsImmediate) {
  Simulation sim;
  WaitGroup wg(&sim);
  bool done = false;
  sim.Spawn([](WaitGroup* g, bool* flag) -> Task<void> {
    co_await g->Wait();
    *flag = true;
  }(&wg, &done));
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Simulation sim;
  Semaphore sem(&sim, 2);
  int concurrent = 0, peak = 0;
  auto worker = [](Simulation* s, Semaphore* sm, int* cur, int* pk)
      -> Task<void> {
    co_await sm->Acquire();
    ++*cur;
    *pk = std::max(*pk, *cur);
    co_await s->Delay(100);
    --*cur;
    sm->Release();
  };
  for (int i = 0; i < 10; ++i) {
    sim.Spawn(worker(&sim, &sem, &concurrent, &peak));
  }
  sim.Run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(concurrent, 0);
  // 10 jobs, 2 at a time, 100ns each -> 500ns.
  EXPECT_EQ(sim.Now(), 500u);
  EXPECT_EQ(sem.available(), 2u);
}

TEST(SemaphoreTest, FifoOrder) {
  Simulation sim;
  Semaphore sem(&sim, 1);
  std::vector<int> order;
  auto worker = [](Simulation* s, Semaphore* sm, std::vector<int>* log,
                   int id) -> Task<void> {
    co_await sm->Acquire();
    log->push_back(id);
    co_await s->Delay(10);
    sm->Release();
  };
  for (int id = 0; id < 6; ++id) sim.Spawn(worker(&sim, &sem, &order, id));
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(SemaphoreTest, MixedHandoffAndFreshPermitsAccounting) {
  // Regression-style test for the handoff counter: interleave waiters and
  // releases so permits move both through direct handoff and through the
  // free pool.
  Simulation sim;
  Semaphore sem(&sim, 0);
  int acquired = 0;
  auto taker = [](Semaphore* sm, int* count) -> Task<void> {
    co_await sm->Acquire();
    ++*count;
  };
  for (int i = 0; i < 5; ++i) sim.Spawn(taker(&sem, &acquired));
  sim.Spawn([](Simulation* s, Semaphore* sm) -> Task<void> {
    for (int i = 0; i < 7; ++i) {
      co_await s->Delay(10);
      sm->Release();
    }
  }(&sim, &sem));
  sim.Run();
  EXPECT_EQ(acquired, 5);
  EXPECT_EQ(sem.available(), 2u);  // 7 releases - 5 acquisitions
  EXPECT_EQ(sem.waiting(), 0u);
}

TEST(ChannelTest, PushThenPop) {
  Simulation sim;
  Channel<int> ch(&sim);
  ch.Push(1);
  ch.Push(2);
  std::vector<int> got;
  sim.Spawn([](Channel<int>* c, std::vector<int>* out) -> Task<void> {
    out->push_back(co_await c->Pop());
    out->push_back(co_await c->Pop());
  }(&ch, &got));
  sim.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(ChannelTest, PopBlocksUntilPush) {
  Simulation sim;
  Channel<std::string> ch(&sim);
  Tick pop_time = 0;
  std::string got;
  sim.Spawn([](Simulation* s, Channel<std::string>* c, Tick* t,
               std::string* out) -> Task<void> {
    *out = co_await c->Pop();
    *t = s->Now();
  }(&sim, &ch, &pop_time, &got));
  sim.Spawn([](Simulation* s, Channel<std::string>* c) -> Task<void> {
    co_await s->Delay(250);
    c->Push("payload");
  }(&sim, &ch));
  sim.Run();
  EXPECT_EQ(got, "payload");
  EXPECT_EQ(pop_time, 250u);
}

TEST(ChannelTest, MultipleBlockedPoppersServedFifo) {
  Simulation sim;
  Channel<int> ch(&sim);
  std::vector<std::pair<int, int>> got;  // (popper id, value)
  auto popper = [](Channel<int>* c, std::vector<std::pair<int, int>>* out,
                   int id) -> Task<void> {
    int v = co_await c->Pop();
    out->emplace_back(id, v);
  };
  for (int id = 0; id < 3; ++id) sim.Spawn(popper(&ch, &got, id));
  sim.Spawn([](Simulation* s, Channel<int>* c) -> Task<void> {
    co_await s->Delay(5);
    c->Push(100);
    c->Push(200);
    c->Push(300);
  }(&sim, &ch));
  sim.Run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], std::make_pair(0, 100));
  EXPECT_EQ(got[1], std::make_pair(1, 200));
  EXPECT_EQ(got[2], std::make_pair(2, 300));
}

TEST(ChannelTest, WorkQueuePipeline) {
  // Producer/consumer steady state: consumer processes each item in 10ns,
  // producer emits every 3ns; total time is bounded by the consumer.
  Simulation sim;
  Channel<int> ch(&sim);
  int processed = 0;
  constexpr int kItems = 100;
  sim.Spawn([](Simulation* s, Channel<int>* c) -> Task<void> {
    for (int i = 0; i < kItems; ++i) {
      co_await s->Delay(3);
      c->Push(i);
    }
  }(&sim, &ch));
  sim.Spawn([](Simulation* s, Channel<int>* c, int* count) -> Task<void> {
    for (int i = 0; i < kItems; ++i) {
      int v = co_await c->Pop();
      EXPECT_EQ(v, i);  // FIFO
      co_await s->Delay(10);
      ++*count;
    }
  }(&sim, &ch, &processed));
  sim.Run();
  EXPECT_EQ(processed, kItems);
  EXPECT_EQ(sim.Now(), 3u + kItems * 10u);  // first arrival + service
}

}  // namespace
}  // namespace kvcsd::sim
