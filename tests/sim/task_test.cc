#include "sim/task.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulation.h"

namespace kvcsd::sim {
namespace {

TEST(SimulationTest, ClockStartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.Now(), 0u);
  EXPECT_EQ(sim.Run(), 0u);
}

TEST(SimulationTest, DelayAdvancesClock) {
  Simulation sim;
  Tick observed = 0;
  sim.Spawn([](Simulation* s, Tick* out) -> Task<void> {
    co_await s->Delay(Microseconds(5));
    *out = s->Now();
  }(&sim, &observed));
  sim.Run();
  EXPECT_EQ(observed, Microseconds(5));
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(SimulationTest, SequentialDelaysAccumulate) {
  Simulation sim;
  Tick observed = 0;
  sim.Spawn([](Simulation* s, Tick* out) -> Task<void> {
    for (int i = 0; i < 10; ++i) co_await s->Delay(100);
    *out = s->Now();
  }(&sim, &observed));
  sim.Run();
  EXPECT_EQ(observed, 1000u);
}

TEST(SimulationTest, ProcessesInterleaveDeterministically) {
  Simulation sim;
  std::vector<int> order;
  auto proc = [](Simulation* s, std::vector<int>* log, int id,
                 Tick step) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await s->Delay(step);
      log->push_back(id);
    }
  };
  sim.Spawn(proc(&sim, &order, 1, 10));
  sim.Spawn(proc(&sim, &order, 2, 15));
  sim.Run();
  // t=10: 1. t=15: 2. t=20: 1. t=30: both finish a delay; 2's wakeup was
  // scheduled at t=15, before 1's at t=20, so FIFO resumes 2 first. t=45: 2
  // is already done; the last event is 1's at t=30 and 2's at t=45.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST(SimulationTest, EqualTimeEventsFireInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  auto proc = [](Simulation* s, std::vector<int>* log, int id) -> Task<void> {
    co_await s->Delay(50);
    log->push_back(id);
  };
  for (int id = 0; id < 8; ++id) sim.Spawn(proc(&sim, &order, id));
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(TaskTest, NestedTasksReturnValues) {
  Simulation sim;
  int result = 0;
  auto leaf = [](Simulation* s) -> Task<int> {
    co_await s->Delay(7);
    co_return 21;
  };
  auto mid = [&leaf](Simulation* s) -> Task<int> {
    int a = co_await leaf(s);
    int b = co_await leaf(s);
    co_return a + b;
  };
  sim.Spawn([](Simulation* s, decltype(mid)* m, int* out) -> Task<void> {
    *out = co_await (*m)(s);
  }(&sim, &mid, &result));
  sim.Run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(sim.Now(), 14u);
}

TEST(TaskTest, DeeplyNestedAwaitChain) {
  // Exercises symmetric transfer: a deep chain must not overflow the stack.
  Simulation sim;
  struct Recurse {
    static Task<int> Run(Simulation* s, int depth) {
      if (depth == 0) {
        co_await s->Delay(1);
        co_return 0;
      }
      int below = co_await Run(s, depth - 1);
      co_return below + 1;
    }
  };
  int result = -1;
  sim.Spawn([](Simulation* s, int* out) -> Task<void> {
    *out = co_await Recurse::Run(s, 5000);
  }(&sim, &result));
  sim.Run();
  EXPECT_EQ(result, 5000);
}

TEST(TaskTest, ExceptionPropagatesToAwaiter) {
  Simulation sim;
  bool caught = false;
  auto thrower = [](Simulation* s) -> Task<void> {
    co_await s->Delay(1);
    throw std::runtime_error("boom");
  };
  sim.Spawn([](Simulation* s, decltype(thrower)* t, bool* flag)
                -> Task<void> {
    try {
      co_await (*t)(s);
    } catch (const std::runtime_error& e) {
      *flag = std::string(e.what()) == "boom";
    }
  }(&sim, &thrower, &caught));
  sim.Run();
  EXPECT_TRUE(caught);
}

TEST(TaskTest, UnstartedTaskIsDestroyedCleanly) {
  // A Task that is created but never awaited must not leak or crash.
  bool ran = false;
  {
    auto t = [](bool* flag) -> Task<void> {
      *flag = true;
      co_return;
    }(&ran);
    EXPECT_TRUE(t.valid());
  }
  EXPECT_FALSE(ran);  // lazy: never started
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int ticks = 0;
  sim.Spawn([](Simulation* s, int* count) -> Task<void> {
    for (int i = 0; i < 100; ++i) {
      co_await s->Delay(10);
      ++*count;
    }
  }(&sim, &ticks));
  sim.RunUntil(55);
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.Now(), 55u);
  EXPECT_EQ(sim.live_processes(), 1u);
  sim.Run();
  EXPECT_EQ(ticks, 100);
  EXPECT_EQ(sim.live_processes(), 0u);
}

}  // namespace
}  // namespace kvcsd::sim
