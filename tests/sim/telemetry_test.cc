#include "sim/telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace kvcsd::sim {
namespace {

TEST(TelemetrySamplerTest, DisabledByDefault) {
  TelemetrySampler t;
  t.AddSource("dev", [](TelemetrySampler::Gauges* out) {
    out->emplace_back("g", 1);
  });
  EXPECT_FALSE(t.enabled());
  EXPECT_FALSE(t.Due(1000000));
}

TEST(TelemetrySamplerTest, NotDueWithoutSources) {
  TelemetrySampler t;
  t.Enable(/*interval=*/100);
  // Nothing registered: sampling would only record empty points.
  EXPECT_FALSE(t.Due(1000));
}

TEST(TelemetrySamplerTest, SamplesStampedOnCadenceGrid) {
  TelemetrySampler t;
  t.Enable(/*interval=*/100);
  std::uint64_t value = 7;
  t.AddSource("dev", [&value](TelemetrySampler::Gauges* out) {
    out->emplace_back("queue_depth", value);
  });

  EXPECT_TRUE(t.Due(0));
  t.Sample(0);
  EXPECT_FALSE(t.Due(99));  // next due at 100

  // Event times are sparse; the sample is stamped at the latest cadence
  // multiple <= now, not at the (arbitrary) event time.
  value = 9;
  EXPECT_TRUE(t.Due(257));
  t.Sample(257);
  EXPECT_FALSE(t.Due(299));
  EXPECT_TRUE(t.Due(300));

  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.samples()[0].tick, 0u);
  EXPECT_EQ(t.samples()[1].tick, 200u);
  ASSERT_EQ(t.names().size(), 1u);
  EXPECT_EQ(t.names()[0], "queue_depth");
  ASSERT_EQ(t.samples()[1].values.size(), 1u);
  EXPECT_EQ(t.samples()[1].values[0].second, 9u);
}

TEST(TelemetrySamplerTest, AddSourceReplacesByKey) {
  TelemetrySampler t;
  t.Enable(/*interval=*/10);
  const std::uint64_t old_token =
      t.AddSource("device", [](TelemetrySampler::Gauges* out) {
        out->emplace_back("g", 1);
      });
  // A restarted device re-registers under the same key and supersedes the
  // powered-off incarnation's callback.
  t.AddSource("device", [](TelemetrySampler::Gauges* out) {
    out->emplace_back("g", 2);
  });
  t.Sample(0);
  ASSERT_EQ(t.size(), 1u);
  ASSERT_EQ(t.samples()[0].values.size(), 1u);
  EXPECT_EQ(t.samples()[0].values[0].second, 2u);

  // The superseded owner's deregistration must not tear down the live
  // replacement (the old Device's dtor runs after Restart).
  t.RemoveSource(old_token);
  t.Sample(20);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.samples()[1].values.size(), 1u);
}

TEST(TelemetrySamplerTest, RemoveSourceDropsIt) {
  TelemetrySampler t;
  t.Enable(/*interval=*/10);
  const std::uint64_t token =
      t.AddSource("dev", [](TelemetrySampler::Gauges* out) {
        out->emplace_back("g", 1);
      });
  t.RemoveSource(token);
  EXPECT_FALSE(t.Due(100));
}

TEST(TelemetrySamplerTest, RingDropsOldestSamples) {
  TelemetrySampler t;
  t.Enable(/*interval=*/10, /*max_samples=*/2);
  t.AddSource("dev", [](TelemetrySampler::Gauges* out) {
    out->emplace_back("g", 1);
  });
  t.Sample(0);
  t.Sample(10);
  t.Sample(20);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.dropped(), 1u);
  EXPECT_EQ(t.samples().front().tick, 10u);
}

TEST(TelemetrySamplerTest, ToJsonIsColumnar) {
  TelemetrySampler t;
  t.Enable(/*interval=*/100);
  t.AddSource("dev", [](TelemetrySampler::Gauges* out) {
    out->emplace_back("a", 5);
    out->emplace_back("b", 6);
  });
  t.Sample(100);
  const std::string json = t.ToJson();
  EXPECT_NE(json.find("\"interval_ns\":100"), std::string::npos);
  EXPECT_NE(json.find("\"names\":[\"a\",\"b\"]"), std::string::npos);
  EXPECT_NE(json.find("{\"t\":100,\"v\":[[0,5],[1,6]]}"), std::string::npos);
}

TEST(TelemetrySamplerTest, RingSaturationDropsOldestAndCounts) {
  TelemetrySampler t;
  t.Enable(/*interval=*/100, /*max_samples=*/4);
  std::uint64_t tick_value = 0;
  t.AddSource("dev", [&tick_value](TelemetrySampler::Gauges* out) {
    out->emplace_back("g", tick_value);
  });
  for (std::uint64_t i = 1; i <= 10; ++i) {
    tick_value = i;
    t.Sample(i * 100);
  }
  // Bounded ring: newest 4 samples kept, 6 oldest dropped and counted.
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  ASSERT_EQ(t.samples().size(), 4u);
  EXPECT_EQ(t.samples().front().tick, 700u);
  EXPECT_EQ(t.samples().front().values[0].second, 7u);
  EXPECT_EQ(t.samples().back().tick, 1000u);
  EXPECT_EQ(t.samples().back().values[0].second, 10u);
  // The drop count is surfaced in the JSON dump so analysis tooling can
  // tell a truncated series from a complete one.
  EXPECT_NE(t.ToJson().find("\"dropped\":6"), std::string::npos);

  t.Clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TelemetrySamplerTest, SourceReplacementSupersedesOldToken) {
  // The Device::Restart pattern: a new incarnation re-registers under the
  // same key; the dead incarnation's later RemoveSource must not evict
  // the replacement, and samples must list each gauge exactly once.
  TelemetrySampler t;
  t.Enable(/*interval=*/100);
  const std::uint64_t old_token =
      t.AddSource("device", [](TelemetrySampler::Gauges* out) {
        out->emplace_back("g", 1);
      });
  t.Sample(100);
  const std::uint64_t new_token =
      t.AddSource("device", [](TelemetrySampler::Gauges* out) {
        out->emplace_back("g", 2);
      });
  EXPECT_NE(old_token, new_token);
  t.RemoveSource(old_token);  // stale token: ignored, key now owned by new
  t.Sample(200);
  ASSERT_EQ(t.samples().size(), 2u);
  ASSERT_EQ(t.samples().back().values.size(), 1u);
  EXPECT_EQ(t.samples().back().values[0].second, 2u);
}

}  // namespace
}  // namespace kvcsd::sim
