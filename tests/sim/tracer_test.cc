#include "sim/tracer.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "sim/simulation.h"

namespace kvcsd::sim {
namespace {

TEST(TracerTest, DisabledByDefaultAndRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.CompleteSpan(t.Track("a"), "span", 0, 10);
  t.Instant(t.Track("a"), "marker", 5);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerTest, TrackInterningIsIdempotent) {
  Tracer t;
  const std::uint32_t a = t.Track("compaction");
  const std::uint32_t b = t.Track("nvme");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.Track("compaction"), a);
  EXPECT_EQ(t.Track("nvme"), b);
}

TEST(TracerTest, RecordsSpansAndInstants) {
  Tracer t;
  t.Enable();
  t.CompleteSpan(t.Track("dev"), "dispatch", 100, 350,
                 {{"keyspace", "ks0"}});
  t.Instant(t.Track("dev"), "crash_point", 400);
  EXPECT_EQ(t.size(), 2u);

  const std::string json = t.ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"dispatch\""), std::string::npos);
  EXPECT_NE(json.find("\"crash_point\""), std::string::npos);
  EXPECT_NE(json.find("\"ks0\""), std::string::npos);
  // 250 ns span = 0.250 us in trace_event units.
  EXPECT_NE(json.find("\"dur\":0.250"), std::string::npos);
}

TEST(TracerTest, DropsBeyondMaxEvents) {
  Tracer t;
  t.Enable(/*max_events=*/2);
  const std::uint32_t track = t.Track("x");
  for (int i = 0; i < 5; ++i) {
    t.CompleteSpan(track, "s", i, i + 1);
  }
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.dropped(), 3u);
  t.Clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerTest, FlowEventsCarryCategoryIdAndBinding) {
  Tracer t;
  t.Enable();
  t.FlowBegin(t.Track("client"), "cmd", 42, 100);
  t.FlowStep(t.Track("nvme"), "cmd", 42, 150);
  t.FlowEnd(t.Track("device"), "cmd", 42, 200);
  EXPECT_EQ(t.size(), 3u);

  const std::string json = t.ToJson();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"flow\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":42"), std::string::npos);
  // The terminating event must bind to the enclosing slice ("bp":"e"), or
  // viewers attach the arrow to the next slice on the track instead.
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  // Exactly one event (the 'f') carries the binding.
  EXPECT_EQ(json.find("\"bp\":\"e\""), json.rfind("\"bp\":\"e\""));
}

TEST(TracerTest, FlowEventsIgnoredWhenDisabled) {
  Tracer t;
  t.FlowBegin(t.Track("a"), "cmd", 1, 10);
  t.FlowEnd(t.Track("b"), "cmd", 1, 20);
  EXPECT_EQ(t.size(), 0u);
}

TEST(TraceSpanTest, NoOpWhenTracerDisabled) {
  Simulation sim;
  {
    TraceSpan span(&sim, "track", "name");
    span.Arg("k", "v");
  }
  EXPECT_EQ(sim.tracer().size(), 0u);
}

TEST(TraceSpanTest, RecordsSimulatedInterval) {
  Simulation sim;
  sim.tracer().Enable();
  sim.Spawn([](Simulation* s) -> Task<void> {
    TraceSpan span(s, "work", "step");
    span.Arg("id", std::uint64_t{7});
    co_await s->Delay(123);
  }(&sim));
  sim.Run();

  ASSERT_EQ(sim.tracer().size(), 1u);
  const std::string json = sim.tracer().ToJson();
  EXPECT_NE(json.find("\"step\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"7\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.123"), std::string::npos);
}

// A span must survive its inputs: Args are copied eagerly, so freeing the
// source strings before the span closes is safe (the compactor does this
// when a keyspace is dropped mid-compaction).
TEST(TraceSpanTest, ArgsCopiedEagerly) {
  Simulation sim;
  sim.tracer().Enable();
  {
    auto name = std::make_unique<std::string>("ephemeral");
    TraceSpan span(&sim, "t", "s");
    span.Arg("keyspace", *name);
    name.reset();
  }
  EXPECT_NE(sim.tracer().ToJson().find("ephemeral"), std::string::npos);
}

}  // namespace
}  // namespace kvcsd::sim
