#include "storage/block_ssd.h"

#include <gtest/gtest.h>

#include "../testutil.h"

namespace kvcsd::storage {
namespace {

BlockSsdConfig SmallBlockSsd() {
  BlockSsdConfig c;
  c.nand.channels = 4;
  c.stripe_size = KiB(128);
  return c;
}

TEST(BlockSsdTest, LargeSequentialWriteUsesAllChannels) {
  sim::Simulation sim;
  BlockSsd ssd(&sim, SmallBlockSsd());
  // 1 MiB = 8 stripes over 4 channels -> 2 stripes (256 KiB) per channel.
  testutil::RunSim(sim, ssd.Write(0, MiB(1)));
  const Tick per_channel = TransferTicks(KiB(256), 500e6);
  EXPECT_EQ(sim.Now(), per_channel + NandConfig{}.program_latency);
  EXPECT_EQ(ssd.total_bytes_written(), MiB(1));
}

TEST(BlockSsdTest, SmallReadTouchesOneChannel) {
  sim::Simulation sim;
  BlockSsd ssd(&sim, SmallBlockSsd());
  testutil::RunSim(sim, ssd.Read(KiB(128) * 5, 4096));
  EXPECT_EQ(sim.Now(), TransferTicks(4096, 500e6) + NandConfig{}.read_latency);
  EXPECT_EQ(ssd.total_read_ops(), 1u);
}

TEST(BlockSsdTest, UnalignedRequestSpansStripes) {
  sim::Simulation sim;
  BlockSsd ssd(&sim, SmallBlockSsd());
  // Start 4 KiB before a stripe boundary, read 8 KiB: two channels.
  testutil::RunSim(sim, ssd.Read(KiB(128) - 4096, 8192));
  // Both chunks are 4 KiB on distinct channels -> time of one.
  EXPECT_EQ(sim.Now(), TransferTicks(4096, 500e6) + NandConfig{}.read_latency);
}

TEST(BlockSsdTest, ZeroByteIoIsFree) {
  sim::Simulation sim;
  BlockSsd ssd(&sim, SmallBlockSsd());
  testutil::RunSim(sim, ssd.Write(0, 0));
  EXPECT_EQ(sim.Now(), 0u);
}

TEST(BlockSsdTest, FlushIsShortBarrier) {
  sim::Simulation sim;
  BlockSsd ssd(&sim, SmallBlockSsd());
  testutil::RunSim(sim, ssd.Flush());
  EXPECT_EQ(sim.Now(), Microseconds(20));
}

TEST(BlockSsdTest, RandomReadsOnSameStripeSerialize) {
  sim::Simulation sim;
  BlockSsd ssd(&sim, SmallBlockSsd());
  sim::WaitGroup wg(&sim);
  wg.Add(2);
  auto read = [](BlockSsd* s, sim::WaitGroup* g,
                 std::uint64_t off) -> sim::Task<void> {
    co_await s->Read(off, 4096);
    g->Done();
  };
  sim.Spawn(read(&ssd, &wg, 0));
  sim.Spawn(read(&ssd, &wg, 8192));  // same stripe 0 -> same channel
  sim.Run();
  EXPECT_EQ(sim.Now(),
            2 * TransferTicks(4096, 500e6) + NandConfig{}.read_latency);
}

}  // namespace
}  // namespace kvcsd::storage
