#include "storage/nand.h"

#include <gtest/gtest.h>

#include "../testutil.h"

namespace kvcsd::storage {
namespace {

NandConfig SmallNand() {
  NandConfig c;
  c.channels = 4;
  c.page_size = 4096;
  c.read_latency = Microseconds(70);
  c.program_latency = Microseconds(400);
  c.erase_latency = Milliseconds(3);
  c.channel_bytes_per_sec = 500e6;
  return c;
}

TEST(NandModelTest, ReadCostIsTransferPlusLatency) {
  sim::Simulation sim;
  NandModel nand(&sim, SmallNand());
  testutil::RunSim(sim, nand.Read(0, 4096));
  // 4096 B at 500 MB/s = 8192 ns, plus 70 us array latency.
  EXPECT_EQ(sim.Now(), 8192u + Microseconds(70));
}

TEST(NandModelTest, SubPageReadsRoundUpToPage) {
  sim::Simulation sim;
  NandModel nand(&sim, SmallNand());
  testutil::RunSim(sim, nand.Read(1, 100));
  EXPECT_EQ(nand.bytes_read(), 4096u);
}

TEST(NandModelTest, ChannelsAreIndependent) {
  // Two programs on different channels overlap; on the same channel they
  // serialize on the transfer (latency pipelines).
  const std::uint64_t bytes = MiB(1);
  const Tick service = TransferTicks(bytes, 500e6);

  sim::Simulation sim_parallel;
  {
    NandModel nand(&sim_parallel, SmallNand());
    sim::WaitGroup wg(&sim_parallel);
    wg.Add(2);
    auto op = [](NandModel* n, sim::WaitGroup* g, std::uint32_t ch,
                 std::uint64_t b) -> sim::Task<void> {
      co_await n->Program(ch, b);
      g->Done();
    };
    sim_parallel.Spawn(op(&nand, &wg, 0, bytes));
    sim_parallel.Spawn(op(&nand, &wg, 1, bytes));
    sim_parallel.Run();
    EXPECT_EQ(sim_parallel.Now(), service + Microseconds(400));
  }

  sim::Simulation sim_serial;
  {
    NandModel nand(&sim_serial, SmallNand());
    sim::WaitGroup wg(&sim_serial);
    wg.Add(2);
    auto op = [](NandModel* n, sim::WaitGroup* g, std::uint32_t ch,
                 std::uint64_t b) -> sim::Task<void> {
      co_await n->Program(ch, b);
      g->Done();
    };
    sim_serial.Spawn(op(&nand, &wg, 2, bytes));
    sim_serial.Spawn(op(&nand, &wg, 2, bytes));
    sim_serial.Run();
    EXPECT_EQ(sim_serial.Now(), 2 * service + Microseconds(400));
  }
}

TEST(NandModelTest, EraseChargesEraseLatency) {
  sim::Simulation sim;
  NandModel nand(&sim, SmallNand());
  testutil::RunSim(sim, nand.Erase(3));
  EXPECT_EQ(sim.Now(), Milliseconds(3));
  EXPECT_EQ(nand.erases(), 1u);
}

TEST(NandModelTest, TrafficCountersAccumulate) {
  sim::Simulation sim;
  NandModel nand(&sim, SmallNand());
  testutil::RunSim(sim, [](NandModel* n) -> sim::Task<void> {
    co_await n->Program(0, 10000);  // rounds to 12288
    co_await n->Read(0, 5000);      // rounds to 8192
  }(&nand));
  EXPECT_EQ(nand.bytes_written(), 12288u);
  EXPECT_EQ(nand.bytes_read(), 8192u);
}

}  // namespace
}  // namespace kvcsd::storage
