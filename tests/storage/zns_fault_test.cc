// Fault injection at the ZNS layer: injected I/O errors, the power-off
// gate, torn-tail truncation, and the Restart handoff (CloneStateFrom).
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "../testutil.h"
#include "sim/fault.h"
#include "storage/zns.h"

namespace kvcsd::storage {
namespace {

ZnsConfig FaultyZns(sim::FaultInjector* faults) {
  ZnsConfig c;
  c.nand.channels = 4;
  c.zone_size = KiB(64);
  c.num_zones = 16;
  c.faults = faults;
  return c;
}

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(s.data()), s.size());
}

std::string ReadZone(sim::Simulation& sim, ZnsSsd& ssd, std::uint32_t zone) {
  std::string out(ssd.write_pointer(zone), '\0');
  if (out.empty()) return out;
  auto status = testutil::RunSim(
      sim, ssd.Read(static_cast<std::uint64_t>(zone) * ssd.zone_size(),
                    std::span<std::byte>(
                        reinterpret_cast<std::byte*>(out.data()),
                        out.size())));
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out;
}

TEST(ZnsFaultTest, InjectedAppendErrorLeavesZoneUntouched) {
  sim::Simulation sim;
  sim::FaultInjector faults;
  ZnsSsd ssd(&sim, FaultyZns(&faults));

  sim::ErrorRule rule;
  rule.op = sim::FaultOp::kAppend;
  rule.zone = 3;
  faults.AddErrorRule(rule);

  auto bad = testutil::RunSim(sim, ssd.Append(3, AsBytes("doomed")));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIoError);
  EXPECT_EQ(ssd.write_pointer(3), 0u);  // failed append wrote nothing
  EXPECT_EQ(ssd.zone_state(3), ZoneState::kEmpty);

  // The rule's budget (times = 1) is spent; the retry lands.
  auto good = testutil::RunSim(sim, ssd.Append(3, AsBytes("doomed")));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(ReadZone(sim, ssd, 3), "doomed");
}

TEST(ZnsFaultTest, PowerOffFailsAllOperationsButKeepsBytes) {
  sim::Simulation sim;
  sim::FaultInjector faults;
  ZnsSsd ssd(&sim, FaultyZns(&faults));
  faults.set_torn_tail_keep(-1.0);  // no tearing in this test

  ASSERT_TRUE(testutil::RunSim(sim, ssd.Append(1, AsBytes("survivor"))).ok());
  faults.Crash();

  EXPECT_FALSE(testutil::RunSim(sim, ssd.Append(1, AsBytes("x"))).ok());
  std::string out(8, '\0');
  EXPECT_FALSE(testutil::RunSim(
                   sim, ssd.Read(1 * KiB(64),
                                 std::span<std::byte>(
                                     reinterpret_cast<std::byte*>(out.data()),
                                     out.size())))
                   .ok());
  EXPECT_FALSE(testutil::RunSim(sim, ssd.Reset(1)).ok());

  // The medium itself survived: after the restart reset, bytes read back.
  faults.ResetForRestart();
  EXPECT_EQ(ReadZone(sim, ssd, 1), "survivor");
}

TEST(ZnsFaultTest, CrashTearsTheInflightAppend) {
  sim::Simulation sim;
  sim::FaultInjector faults;
  ZnsSsd ssd(&sim, FaultyZns(&faults));
  faults.set_torn_tail_keep(0.5);

  ASSERT_TRUE(testutil::RunSim(sim, ssd.Append(0, AsBytes("stable-"))).ok());
  ASSERT_TRUE(
      testutil::RunSim(sim, ssd.Append(0, AsBytes("0123456789"))).ok());
  ASSERT_EQ(ssd.write_pointer(0), 17u);

  faults.Crash();  // the SSD's registered hook tears the last append
  faults.ResetForRestart();

  // Only the in-flight append is torn, never the stable prefix.
  EXPECT_EQ(ssd.write_pointer(0), 12u);
  EXPECT_EQ(ReadZone(sim, ssd, 0), "stable-01234");
}

TEST(ZnsFaultTest, TearAlwaysDropsAtLeastOneByte) {
  sim::Simulation sim;
  sim::FaultInjector faults;
  ZnsSsd ssd(&sim, FaultyZns(&faults));
  faults.set_torn_tail_keep(0.999);  // rounds to "keep everything"...

  ASSERT_TRUE(testutil::RunSim(sim, ssd.Append(0, AsBytes("ab"))).ok());
  faults.Crash();
  // ...but a fraction < 1 still drops at least one byte.
  EXPECT_EQ(ssd.write_pointer(0), 1u);
}

// A ZnsSsd destroyed while its injector lives on must deregister its
// torn-tail hook: a later Crash() would otherwise call into the freed
// object (ASan in CI turns a regression here into a hard failure).
TEST(ZnsFaultTest, DestroyedSsdDeregistersItsCrashHook) {
  sim::Simulation sim;
  sim::FaultInjector faults;
  faults.set_torn_tail_keep(0.5);
  {
    ZnsSsd doomed(&sim, FaultyZns(&faults));
    ASSERT_TRUE(testutil::RunSim(sim, doomed.Append(0, AsBytes("gone"))).ok());
  }
  // A surviving SSD on the same injector still gets its tail torn.
  ZnsSsd survivor(&sim, FaultyZns(&faults));
  ASSERT_TRUE(
      testutil::RunSim(sim, survivor.Append(0, AsBytes("torn-here"))).ok());
  faults.Crash();
  EXPECT_TRUE(faults.crashed());
  EXPECT_LT(survivor.write_pointer(0), 9u);  // its own hook did fire
}

TEST(ZnsFaultTest, CloneStateFromAdoptsSurvivingMedium) {
  sim::Simulation sim;
  sim::FaultInjector faults;
  ZnsSsd ssd(&sim, FaultyZns(&faults));
  faults.set_torn_tail_keep(-1.0);

  ASSERT_TRUE(testutil::RunSim(sim, ssd.Append(2, AsBytes("carried"))).ok());
  ASSERT_TRUE(testutil::RunSim(sim, ssd.Append(5, AsBytes("over"))).ok());
  ASSERT_TRUE(ssd.Finish(5).ok());
  faults.Crash();
  faults.ResetForRestart();

  ZnsSsd fresh(&sim, FaultyZns(&faults));
  fresh.CloneStateFrom(ssd);
  EXPECT_EQ(fresh.write_pointer(2), 7u);
  EXPECT_EQ(fresh.zone_state(2), ZoneState::kOpen);
  EXPECT_EQ(fresh.zone_state(5), ZoneState::kFull);
  EXPECT_EQ(ReadZone(sim, fresh, 2), "carried");
  // The clone is independently writable.
  ASSERT_TRUE(testutil::RunSim(sim, fresh.Append(2, AsBytes("!"))).ok());
  EXPECT_EQ(ReadZone(sim, fresh, 2), "carried!");
  EXPECT_EQ(ssd.write_pointer(2), 7u);  // the donor is untouched
}

}  // namespace
}  // namespace kvcsd::storage
