#include "storage/zns.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "../testutil.h"

namespace kvcsd::storage {
namespace {

ZnsConfig SmallZns() {
  ZnsConfig c;
  c.nand.channels = 4;
  c.zone_size = KiB(64);
  c.num_zones = 16;
  return c;
}

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(s.data()), s.size());
}

TEST(ZnsTest, AppendReturnsDeviceAddress) {
  sim::Simulation sim;
  ZnsSsd ssd(&sim, SmallZns());
  auto addr = testutil::RunSim(sim, ssd.Append(2, AsBytes("hello")));
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(*addr, 2 * KiB(64));
  auto addr2 = testutil::RunSim(sim, ssd.Append(2, AsBytes("world")));
  ASSERT_TRUE(addr2.ok());
  EXPECT_EQ(*addr2, 2 * KiB(64) + 5);
  EXPECT_EQ(ssd.write_pointer(2), 10u);
  EXPECT_EQ(ssd.zone_state(2), ZoneState::kOpen);
}

TEST(ZnsTest, ReadBackReturnsExactBytes) {
  sim::Simulation sim;
  ZnsSsd ssd(&sim, SmallZns());
  const std::string payload = "the quick brown fox jumps over the lazy dog";
  auto addr = testutil::RunSim(sim, ssd.Append(0, AsBytes(payload)));
  ASSERT_TRUE(addr.ok());

  std::string out(payload.size(), '\0');
  auto status = testutil::RunSim(
      sim, ssd.Read(*addr, std::span<std::byte>(
                               reinterpret_cast<std::byte*>(out.data()),
                               out.size())));
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(out, payload);

  // Partial read at an offset.
  std::string mid(5, '\0');
  status = testutil::RunSim(
      sim, ssd.Read(*addr + 4, std::span<std::byte>(
                                   reinterpret_cast<std::byte*>(mid.data()),
                                   mid.size())));
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(mid, "quick");
}

TEST(ZnsTest, ReadBeyondWritePointerFails) {
  sim::Simulation sim;
  ZnsSsd ssd(&sim, SmallZns());
  testutil::RunSim(sim, ssd.Append(0, AsBytes("abc"))).value();
  std::byte buf[8];
  auto status = testutil::RunSim(sim, ssd.Read(0, std::span<std::byte>(buf)));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ZnsTest, AppendBeyondCapacityFails) {
  sim::Simulation sim;
  ZnsSsd ssd(&sim, SmallZns());
  std::string big(KiB(64), 'x');
  auto ok = testutil::RunSim(sim, ssd.Append(1, AsBytes(big)));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ssd.zone_state(1), ZoneState::kFull);
  auto overflow = testutil::RunSim(sim, ssd.Append(1, AsBytes("y")));
  EXPECT_EQ(overflow.status().code(), StatusCode::kFailedPrecondition);

  // A partially filled zone rejects appends that do not fit.
  std::string most(KiB(60), 'x');
  ASSERT_TRUE(testutil::RunSim(sim, ssd.Append(2, AsBytes(most))).ok());
  std::string toobig(KiB(8), 'y');
  auto nofit = testutil::RunSim(sim, ssd.Append(2, AsBytes(toobig)));
  EXPECT_EQ(nofit.status().code(), StatusCode::kOutOfSpace);
}

TEST(ZnsTest, ResetRewindsAndAllowsRewrite) {
  sim::Simulation sim;
  ZnsSsd ssd(&sim, SmallZns());
  testutil::RunSim(sim, ssd.Append(3, AsBytes("old data"))).value();
  ASSERT_TRUE(testutil::RunSim(sim, ssd.Reset(3)).ok());
  EXPECT_EQ(ssd.zone_state(3), ZoneState::kEmpty);
  EXPECT_EQ(ssd.write_pointer(3), 0u);
  EXPECT_EQ(ssd.total_resets(), 1u);

  auto addr = testutil::RunSim(sim, ssd.Append(3, AsBytes("new")));
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(*addr, 3 * KiB(64));
}

TEST(ZnsTest, FinishMakesZoneReadonly) {
  sim::Simulation sim;
  ZnsSsd ssd(&sim, SmallZns());
  testutil::RunSim(sim, ssd.Append(4, AsBytes("data"))).value();
  ASSERT_TRUE(ssd.Finish(4).ok());
  EXPECT_EQ(ssd.zone_state(4), ZoneState::kFull);
  auto denied = testutil::RunSim(sim, ssd.Append(4, AsBytes("more")));
  EXPECT_EQ(denied.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ssd.Finish(5).code(), StatusCode::kFailedPrecondition);
}

TEST(ZnsTest, InvalidZoneIdsRejected) {
  sim::Simulation sim;
  ZnsSsd ssd(&sim, SmallZns());
  auto bad_append = testutil::RunSim(sim, ssd.Append(99, AsBytes("x")));
  EXPECT_EQ(bad_append.status().code(), StatusCode::kInvalidArgument);
  auto bad_reset = testutil::RunSim(sim, ssd.Reset(99));
  EXPECT_EQ(bad_reset.code(), StatusCode::kInvalidArgument);
}

TEST(ZnsTest, EmptyAppendRejected) {
  sim::Simulation sim;
  ZnsSsd ssd(&sim, SmallZns());
  auto r = testutil::RunSim(
      sim, ssd.Append(0, std::span<const std::byte>()));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ZnsTest, ZoneChannelMappingIsModular) {
  sim::Simulation sim;
  ZnsSsd ssd(&sim, SmallZns());
  EXPECT_EQ(ssd.ChannelOf(0), 0u);
  EXPECT_EQ(ssd.ChannelOf(5), 1u);
  EXPECT_EQ(ssd.ChannelOf(15), 3u);
}

TEST(ZnsTest, TrafficCountersTrackPayloadBytes) {
  sim::Simulation sim;
  ZnsSsd ssd(&sim, SmallZns());
  testutil::RunSim(sim, ssd.Append(0, AsBytes("0123456789"))).value();
  std::byte buf[4];
  ASSERT_TRUE(testutil::RunSim(sim, ssd.Read(0, std::span<std::byte>(buf))).ok());
  EXPECT_EQ(ssd.total_bytes_written(), 10u);
  EXPECT_EQ(ssd.total_bytes_read(), 4u);
  // NAND sees page-rounded traffic.
  EXPECT_EQ(ssd.nand().bytes_written(), 4096u);
  EXPECT_EQ(ssd.nand().bytes_read(), 4096u);
}

}  // namespace
}  // namespace kvcsd::storage
