// Test helpers shared across suites: run a coroutine on a simulation and
// return its result after the event queue drains.
#pragma once

#include <gtest/gtest.h>

#include <optional>
#include <utility>

#include "sim/simulation.h"
#include "sim/task.h"

namespace kvcsd::testutil {

template <typename T>
T RunSim(sim::Simulation& simulation, sim::Task<T> task) {
  std::optional<T> result;
  simulation.Spawn([](sim::Task<T> t, std::optional<T>* out)
                       -> sim::Task<void> {
    out->emplace(co_await std::move(t));
  }(std::move(task), &result));
  simulation.Run();
  EXPECT_TRUE(result.has_value()) << "coroutine did not complete";
  return std::move(*result);
}

inline void RunSim(sim::Simulation& simulation, sim::Task<void> task) {
  bool done = false;
  simulation.Spawn([](sim::Task<void> t, bool* flag) -> sim::Task<void> {
    co_await std::move(t);
    *flag = true;
  }(std::move(task), &done));
  simulation.Run();
  EXPECT_TRUE(done) << "coroutine did not complete";
}

}  // namespace kvcsd::testutil
