// Test helpers shared across suites: run a coroutine on a simulation and
// return its result after the event queue drains.
#pragma once

#include <gtest/gtest.h>

#include <optional>
#include <utility>

#include "sim/simulation.h"
#include "sim/task.h"

namespace kvcsd::testutil {

template <typename T>
T RunSim(sim::Simulation& simulation, sim::Task<T> task) {
  std::optional<T> result;
  simulation.Spawn([](sim::Task<T> t, std::optional<T>* out)
                       -> sim::Task<void> {
    out->emplace(co_await std::move(t));
  }(std::move(task), &result));
  simulation.Run();
  EXPECT_TRUE(result.has_value()) << "coroutine did not complete";
  return std::move(*result);
}

inline void RunSim(sim::Simulation& simulation, sim::Task<void> task) {
  bool done = false;
  simulation.Spawn([](sim::Task<void> t, bool* flag) -> sim::Task<void> {
    co_await std::move(t);
    *flag = true;
  }(std::move(task), &done));
  simulation.Run();
  EXPECT_TRUE(done) << "coroutine did not complete";
}

}  // namespace kvcsd::testutil

// gtest's ASSERT_* macros expand to a plain `return;`, which does not
// compile inside a coroutine. These record the failure with EXPECT and
// co_return instead. Use only in Task<void> coroutines.
#define KVCSD_CO_ASSERT(cond)                      \
  do {                                             \
    const bool kvcsd_co_ok_ = static_cast<bool>(cond); \
    EXPECT_TRUE(kvcsd_co_ok_) << #cond;            \
    if (!kvcsd_co_ok_) co_return;                  \
  } while (0)

// For Status / Result<T> expressions (anything with .ok()).
#define KVCSD_CO_ASSERT_OK(expr)                   \
  do {                                             \
    const auto& kvcsd_co_res_ = (expr);            \
    EXPECT_TRUE(kvcsd_co_res_.ok()) << #expr;      \
    if (!kvcsd_co_res_.ok()) co_return;            \
  } while (0)
