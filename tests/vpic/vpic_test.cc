#include "vpic/vpic.h"

#include <gtest/gtest.h>

#include <set>

#include "common/keys.h"

namespace kvcsd::vpic {
namespace {

GeneratorConfig SmallDump() {
  GeneratorConfig c;
  c.num_particles = 50000;
  c.num_files = 16;
  c.seed = 7;
  return c;
}

TEST(VpicTest, ParticleRecordIs48Bytes) {
  Particle p;
  p.id = 123;
  p.energy = 1.5f;
  EXPECT_EQ(p.Key().size(), kIdBytes);
  EXPECT_EQ(p.Payload().size(), kPayloadBytes);
  EXPECT_EQ(kParticleBytes, 48u);
}

TEST(VpicTest, PayloadRoundTrip) {
  Particle p;
  p.id = 99;
  p.dx = 0.1f;
  p.uy = -2.5f;
  p.weight = 1.0f;
  p.energy = 3.25f;
  Particle back;
  ASSERT_TRUE(ParsePayload(p.Payload(), &back));
  EXPECT_EQ(back.dx, p.dx);
  EXPECT_EQ(back.uy, p.uy);
  EXPECT_EQ(back.energy, p.energy);
}

TEST(VpicTest, EnergyLivesAtDocumentedOffset) {
  Particle p;
  p.energy = 7.75f;
  const std::string payload = p.Payload();
  float raw;
  std::memcpy(&raw, payload.data() + kEnergyOffset, 4);
  EXPECT_EQ(raw, 7.75f);
}

TEST(VpicTest, DumpIsDeterministic) {
  Dump a(SmallDump());
  Dump b(SmallDump());
  ASSERT_EQ(a.num_particles(), b.num_particles());
  for (std::size_t i : {std::size_t{0}, std::size_t{777}}) {
    EXPECT_EQ(a.all()[i].energy, b.all()[i].energy);
    EXPECT_EQ(a.all()[i].ux, b.all()[i].ux);
  }
}

TEST(VpicTest, FilesPartitionTheDump) {
  Dump dump(SmallDump());
  std::set<std::uint64_t> seen;
  std::uint64_t total = 0;
  for (std::uint32_t f = 0; f < dump.num_files(); ++f) {
    for (const Particle* p : dump.FileParticles(f)) {
      EXPECT_TRUE(seen.insert(p->id).second) << "duplicate id " << p->id;
      ++total;
    }
  }
  EXPECT_EQ(total, dump.num_particles());
}

TEST(VpicTest, EnergyHasLongTail) {
  Dump dump(SmallDump());
  // The 0.1% threshold should be several times the median: a long tail.
  const float p50 = dump.EnergyThresholdForSelectivity(0.5);
  const float p001 = dump.EnergyThresholdForSelectivity(0.001);
  EXPECT_GT(p001, 2.5f * p50);
}

TEST(VpicTest, SelectivityThresholdsAreAccurate) {
  Dump dump(SmallDump());
  for (double fraction : {0.001, 0.01, 0.05, 0.2}) {
    const float threshold = dump.EnergyThresholdForSelectivity(fraction);
    const auto hits = dump.CountAbove(threshold);
    const double actual =
        static_cast<double>(hits) /
        static_cast<double>(dump.num_particles());
    EXPECT_NEAR(actual, fraction, fraction * 0.05 + 1e-4)
        << "fraction=" << fraction;
  }
}

TEST(VpicTest, ThresholdEdgeCases) {
  Dump dump(SmallDump());
  EXPECT_EQ(dump.CountAbove(dump.EnergyThresholdForSelectivity(0.0)), 0u);
  EXPECT_EQ(dump.CountAbove(dump.EnergyThresholdForSelectivity(1.0)),
            dump.num_particles());
}

TEST(VpicTest, FileSerializationRoundTrip) {
  Dump dump(SmallDump());
  auto slice = dump.FileParticles(3);
  const std::string raw = SerializeFile(slice);
  EXPECT_EQ(raw.size(), slice.size() * kParticleBytes);
  std::vector<Particle> back;
  ASSERT_TRUE(DeserializeFile(raw, &back));
  ASSERT_EQ(back.size(), slice.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].id, slice[i]->id);
    EXPECT_EQ(back[i].energy, slice[i]->energy);
  }
  // Truncated input rejected.
  std::vector<Particle> bad;
  EXPECT_FALSE(DeserializeFile(raw.substr(0, raw.size() - 1), &bad));
}

TEST(VpicTest, KeysSortById) {
  Particle a, b;
  a.id = 5;
  b.id = 6;
  EXPECT_LT(a.Key(), b.Key());
  EXPECT_EQ(FixedKeyId(a.Key()), 5u);
}

}  // namespace
}  // namespace kvcsd::vpic
