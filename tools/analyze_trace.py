#!/usr/bin/env python3
"""Latency-breakdown analyzer for KV-CSD Chrome traces and telemetry.

Consumes the ``--trace=`` Chrome trace_event JSON emitted by the benches
(and optionally the ``--telemetry=`` time-series dump) and prints:

  * a per-opcode critical-path breakdown: how much of each command's
    round trip was spent waiting in the NVMe submission queue vs
    executing on the device vs in completion delivery, with p50/p99,
  * a per-submission-queue queue-wait breakdown (the ``queue_wait``
    span carries the SQ id in ``args.q``), exposing arbitration skew
    between queues in multi-SQ runs,
  * for sharded (multi-device) traces, where every device-side track is
    prefixed ``shard<i>.``: a per-shard command breakdown (routing skew,
    per-shard queue-wait/exec) and a scatter-gather attribution table
    built from the router track's ``scan``/``secondary_scan``/``select``/
    ``aggregate`` spans (fan-out, merged rows, slowest shard, and how
    much of the gather was merge overhead vs waiting on that shard),
  * a pushdown attribution table: per scan source (primary vs secondary
    index), bytes the device scanned vs bytes it returned to the host,
    and the resulting reduction factor (``select``/``aggregate`` spans
    on the ``query`` track),
  * the top-N slowest individual commands with their stage split,
  * a summary of every telemetry gauge (samples / min / mean / max / last).

It also validates causal flow events: every ``cat:"flow"`` group keyed
by (name, id) must contain exactly one 's' (begin) and one 'f' (end)
with non-decreasing timestamps — a dangling or reversed flow means the
instrumentation lost track of a command. Violations are warnings by
default and hard failures under ``--strict-flows`` (used in CI).

Usage:
  tools/analyze_trace.py TRACE.json [TELEMETRY.json]
      [--top=N] [--strict-flows] [--require-opcode=NAME ...]
      [--require-bottleneck=RESOURCE]

``--require-opcode=NAME`` exits non-zero unless at least one command of
that opcode completed all stages — CI uses it to assert the trace
actually exercised the paths it claims to cover.

``--require-bottleneck=RESOURCE`` exits non-zero unless the bottleneck
section (which needs TELEMETRY.json with util.* gauges) names that
resource as the most-utilized one — CI uses it to pin known saturation
points, e.g. the single-core dispatch loop under multi-tenant load.

Stage model (tracks are named via thread_name metadata):
  client   opcode span       = full client-observed round trip
  nvme.sq  "queue_wait" span = SQ enqueue -> device doorbell pop
  device   opcode span       = command execution on the SoC
  nvme.cq  "complete" span   = completion DMA back to the host

All spans carry an ``args.cmd_id`` that joins them into one command.
Timestamps are microseconds with nanosecond fractions; everything is
reported in nanoseconds.
"""

import json
import math
import re
import sys
from collections import Counter, defaultdict

USAGE = (
    "usage: analyze_trace.py TRACE.json [TELEMETRY.json] "
    "[--top=N] [--strict-flows] [--require-opcode=NAME ...] "
    "[--require-bottleneck=RESOURCE]"
)

# Stages joined per cmd_id, in pipeline order. The client span is the
# envelope; the three inner stages are disjoint segments of it.
STAGES = ("queue_wait", "exec", "complete")


def die(msg):
    sys.stderr.write("analyze_trace: %s\n" % msg)
    sys.exit(1)


def load_json(path, what):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        die("cannot read %s %s: %s" % (what, path, e))


def percentile(sorted_vals, p):
    """Nearest-rank percentile over an already-sorted list."""
    if not sorted_vals:
        return 0.0
    rank = max(0, min(len(sorted_vals) - 1,
                      math.ceil(p / 100.0 * len(sorted_vals)) - 1))
    return sorted_vals[rank]


def fmt_ns(ns):
    if ns >= 1e9:
        return "%.3fs" % (ns / 1e9)
    if ns >= 1e6:
        return "%.3fms" % (ns / 1e6)
    if ns >= 1e3:
        return "%.3fus" % (ns / 1e3)
    return "%dns" % int(ns)


# Sharded testbeds prefix every per-device track ("shard3.nvme.sq",
# "shard3.device", "shard3.query", ...); the router's own spans live on
# an unprefixed "router" track.
SHARD_TRACK_RE = re.compile(r"^shard(\d+)\.(.*)$")


def split_track(track):
    """'shard3.nvme.sq' -> (3, 'nvme.sq'); unsharded -> (None, track)."""
    m = SHARD_TRACK_RE.match(track)
    if m:
        return int(m.group(1)), m.group(2)
    return None, track


def track_map(events):
    """tid -> track name, from thread_name metadata events."""
    tracks = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            tracks[e.get("tid")] = e.get("args", {}).get("name", "")
    return tracks


def check_flows(events, strict):
    """Validate flow-event pairing; returns the number of violations."""
    groups = defaultdict(list)
    for e in events:
        if e.get("cat") == "flow" and e.get("ph") in ("s", "t", "f"):
            groups[(e.get("name"), e.get("id"))].append(e)
    bad = 0
    for (name, fid), evs in sorted(groups.items()):
        phases = sorted(e["ph"] for e in evs)
        begins = phases.count("s")
        ends = phases.count("f")
        if begins != 1 or ends != 1:
            bad += 1
            sys.stderr.write(
                "analyze_trace: malformed flow (%s, id=%s): "
                "%d begin(s), %d end(s)\n" % (name, fid, begins, ends))
            continue
        ts = {e["ph"]: float(e["ts"]) for e in evs}
        if ts["s"] > ts["f"] or any(
                not ts["s"] <= float(e["ts"]) <= ts["f"]
                for e in evs if e["ph"] == "t"):
            bad += 1
            sys.stderr.write(
                "analyze_trace: disconnected flow (%s, id=%s): "
                "timestamps out of order\n" % (name, fid))
    if bad and strict:
        die("%d malformed/disconnected flow event group(s)" % bad)
    return len(groups), bad


def collect_commands(events, tracks):
    """cmd_id -> {opcode, total, queue_wait, exec, complete} in ns."""
    cmds = defaultdict(dict)
    for e in events:
        if e.get("ph") != "X":
            continue
        args = e.get("args", {})
        cmd_id = args.get("cmd_id")
        if cmd_id is None:
            continue
        shard, track = split_track(tracks.get(e.get("tid"), ""))
        dur_ns = float(e.get("dur", 0)) * 1000.0
        c = cmds[cmd_id]
        if shard is not None:
            c["shard"] = shard
        if track == "client":
            c["opcode"] = e.get("name", "?")
            c["total"] = dur_ns
            c["ts"] = float(e.get("ts", 0))
        elif track == "nvme.sq" and e.get("name") == "queue_wait":
            c["queue_wait"] = dur_ns
            if "q" in args:
                c["queue_id"] = str(args["q"]) if shard is None \
                    else "shard%d.sq%s" % (shard, args["q"])
        elif track == "device":
            c["exec"] = dur_ns
            c.setdefault("opcode", e.get("name", "?"))
        elif track == "nvme.cq" and e.get("name") == "complete":
            c["complete"] = dur_ns
    return cmds


def print_breakdown(cmds):
    by_op = defaultdict(list)
    for cmd_id, c in cmds.items():
        by_op[c.get("opcode", "?")].append(c)

    hdr = "%-16s %6s  %21s %21s %21s %21s" % (
        "opcode", "count", "queue_wait p50/p99", "exec p50/p99",
        "complete p50/p99", "total p50/p99")
    print(hdr)
    print("-" * len(hdr))
    for op in sorted(by_op):
        group = by_op[op]
        cols = ["%-16s %6d" % (op, len(group))]
        for stage in STAGES + ("total",):
            vals = sorted(c[stage] for c in group if stage in c)
            cols.append("%10s/%-10s" % (fmt_ns(percentile(vals, 50)),
                                        fmt_ns(percentile(vals, 99))))
        print("  ".join(cols))


# The delta-log buckets "point_lookup" spans tag via args.src, and their
# rollup: a lookup answered by the delta index never touches the sorted
# run's index blocks, so its latency profile is the delta/merge-read
# overhead the YCSB mixes are designed to expose.
DELTA_SRCS = ("delta", "delta_tombstone")
RUN_SRCS = ("run", "bloom_negative", "miss")


def print_query_breakdown(events, tracks):
    """Point-lookup latency split by answer source (delta vs run)."""
    by_src = defaultdict(list)
    for e in events:
        if e.get("ph") != "X" or e.get("name") != "point_lookup":
            continue
        if split_track(tracks.get(e.get("tid"), ""))[1] != "query":
            continue
        src = e.get("args", {}).get("src", "?")
        by_src[src].append(float(e.get("dur", 0)) * 1000.0)
    if not by_src:
        return
    print()
    hdr = "%-20s %8s  %21s %12s %7s" % (
        "lookup source", "count", "latency p50/p99", "max", "share")
    print(hdr)
    print("-" * len(hdr))
    total_count = sum(len(v) for v in by_src.values())

    def row(label, vals):
        vals = sorted(vals)
        print("%-20s %8d  %10s/%-10s %12s %6.1f%%" % (
            label, len(vals),
            fmt_ns(percentile(vals, 50)), fmt_ns(percentile(vals, 99)),
            fmt_ns(vals[-1] if vals else 0),
            100.0 * len(vals) / total_count if total_count else 0.0))

    for src in sorted(by_src):
        row(src, by_src[src])
    delta_vals = [v for s in DELTA_SRCS for v in by_src.get(s, [])]
    run_vals = [v for s in RUN_SRCS for v in by_src.get(s, [])]
    if delta_vals and run_vals:
        print("-" * len(hdr))
        row("delta-served", delta_vals)
        row("run-served", run_vals)


def print_pushdown_breakdown(events, tracks):
    """Bytes-scanned vs bytes-returned attribution for pushdown scans.

    The device emits one ``select`` / ``aggregate`` span per pushdown
    command on the ``query`` track, tagged with the scan source
    (``primary`` vs ``sidx``) and the byte counts on both sides of the
    predicate.  The reduction column is the pushdown win: how many bytes
    the device read per byte it shipped to the host.
    """
    groups = defaultdict(lambda: {
        "count": 0, "scanned": 0, "returned": 0,
        "rows_scanned": 0, "rows_matched": 0,
    })
    for e in events:
        if e.get("ph") != "X" or e.get("name") not in ("select",
                                                       "aggregate"):
            continue
        if split_track(tracks.get(e.get("tid"), ""))[1] != "query":
            continue
        args = e.get("args", {})
        g = groups[(e["name"], args.get("src", "?"))]
        g["count"] += 1
        g["scanned"] += int(args.get("bytes_scanned", 0))
        g["returned"] += int(args.get("bytes_returned", 0))
        g["rows_scanned"] += int(args.get("rows_scanned", 0))
        g["rows_matched"] += int(args.get("rows_matched", 0))
    if not groups:
        return
    print()
    hdr = "%-18s %6s %12s %12s %14s %14s %10s" % (
        "pushdown", "count", "rows_scanned", "rows_matched",
        "bytes_scanned", "bytes_returned", "reduction")
    print(hdr)
    print("-" * len(hdr))
    totals = {"scanned": 0, "returned": 0}
    for (op, src), g in sorted(groups.items()):
        totals["scanned"] += g["scanned"]
        totals["returned"] += g["returned"]
        print("%-18s %6d %12d %12d %14d %14d %9.1fx" % (
            "%s/%s" % (op, src), g["count"], g["rows_scanned"],
            g["rows_matched"], g["scanned"], g["returned"],
            g["scanned"] / g["returned"] if g["returned"] else 0.0))
    print("-" * len(hdr))
    print("%-18s %6s %12s %12s %14d %14d %9.1fx" % (
        "total", "", "", "", totals["scanned"], totals["returned"],
        totals["scanned"] / totals["returned"]
        if totals["returned"] else 0.0))


def print_queue_breakdown(cmds):
    """Per-SQ queue-wait stats; silent for traces without queue ids."""
    by_q = defaultdict(list)
    for c in cmds.values():
        if "queue_wait" in c and "queue_id" in c:
            by_q[c["queue_id"]].append(c["queue_wait"])
    if not by_q:
        return
    grand_total = sum(sum(vals) for vals in by_q.values())
    print()
    hdr = "%-14s %8s  %21s %12s %12s %7s" % (
        "queue", "count", "queue_wait p50/p99", "max", "total", "share")
    print(hdr)
    print("-" * len(hdr))
    for qid in sorted(by_q, key=lambda q: (len(q), q)):
        vals = sorted(by_q[qid])
        total = sum(vals)
        print("%-14s %8d  %10s/%-10s %12s %12s %6.1f%%" % (
            qid if "." in qid else "sq%s" % qid, len(vals),
            fmt_ns(percentile(vals, 50)), fmt_ns(percentile(vals, 99)),
            fmt_ns(vals[-1]), fmt_ns(total),
            100.0 * total / grand_total if grand_total else 0.0))


def print_shard_breakdown(cmds):
    """Per-shard command split for sharded (multi-device) traces.

    Joins each command's device-side spans to the shard that executed
    them, exposing routing skew (share) and any per-shard latency outlier
    (one shard compacting while the others serve shows up as an exec/p99
    spike on that row alone). Silent for single-device traces.
    """
    by_shard = defaultdict(list)
    for c in cmds.values():
        if "shard" in c:
            by_shard[c["shard"]].append(c)
    if not by_shard:
        return
    total_count = sum(len(v) for v in by_shard.values())
    print()
    print("per-shard breakdown:")
    hdr = "%-8s %8s  %21s %21s %21s %7s" % (
        "shard", "count", "queue_wait p50/p99", "exec p50/p99",
        "total p50/p99", "share")
    print(hdr)
    print("-" * len(hdr))
    for shard in sorted(by_shard):
        group = by_shard[shard]
        cols = ["%-8s %8d" % ("shard%d" % shard, len(group))]
        for stage in ("queue_wait", "exec", "total"):
            vals = sorted(c[stage] for c in group if stage in c)
            cols.append("%10s/%-10s" % (fmt_ns(percentile(vals, 50)),
                                        fmt_ns(percentile(vals, 99))))
        cols.append("%6.1f%%" % (100.0 * len(group) / total_count))
        print("  ".join(cols))


def print_scatter_breakdown(events, tracks):
    """Scatter-gather attribution from the ``router`` track.

    Every routed fan-out query (scan / secondary_scan / select /
    aggregate) emits one span whose args carry the fan-out width, merged
    row count, and the slowest shard's identity and elapsed time. The
    gather cannot finish before its slowest shard, so ``dur -
    slowest_ns`` is the router's own merge/fold overhead — the column to
    watch when scaling out stops paying.
    """
    by_kind = defaultdict(list)
    for e in events:
        if e.get("ph") != "X":
            continue
        if tracks.get(e.get("tid"), "") != "router":
            continue
        args = e.get("args", {})
        if "fanout" not in args:
            continue
        by_kind[e.get("name", "?")].append({
            "dur": float(e.get("dur", 0)) * 1000.0,
            "fanout": int(args.get("fanout", 0)),
            "rows": int(args.get("rows", 0)),
            "slowest_shard": int(args.get("slowest_shard", 0)),
            "slowest_ns": float(args.get("slowest_ns", 0)),
        })
    if not by_kind:
        return
    print()
    print("scatter-gather attribution (router track):")
    hdr = "%-16s %6s %7s %10s  %21s %21s %10s  %-14s" % (
        "query", "count", "fanout", "rows", "gather p50/p99",
        "slowest-shard p50/p99", "merge ovh", "slowest shard")
    print(hdr)
    print("-" * len(hdr))
    for kind in sorted(by_kind):
        group = by_kind[kind]
        durs = sorted(g["dur"] for g in group)
        slowest = sorted(g["slowest_ns"] for g in group)
        # Merge overhead: the part of the gather not explained by waiting
        # on the slowest shard, averaged across queries of this kind.
        ovh = [1.0 - g["slowest_ns"] / g["dur"]
               for g in group if g["dur"] > 0]
        mode_shard, mode_n = Counter(
            g["slowest_shard"] for g in group).most_common(1)[0]
        print("%-16s %6d %7s %10d  %10s/%-10s %10s/%-10s %9.1f%%  %-14s" % (
            kind, len(group),
            "/".join(str(f) for f in sorted({g["fanout"] for g in group})),
            sum(g["rows"] for g in group),
            fmt_ns(percentile(durs, 50)), fmt_ns(percentile(durs, 99)),
            fmt_ns(percentile(slowest, 50)), fmt_ns(percentile(slowest, 99)),
            100.0 * sum(ovh) / len(ovh) if ovh else 0.0,
            "shard%d (%d/%d)" % (mode_shard, mode_n, len(group))))


def print_slowest(cmds, top_n):
    ranked = sorted(
        ((cid, c) for cid, c in cmds.items() if "total" in c),
        key=lambda kv: kv[1]["total"], reverse=True)[:top_n]
    if not ranked:
        return
    print()
    print("top %d slowest commands:" % len(ranked))
    print("%10s %-16s %12s %12s %12s %12s %14s" % (
        "cmd_id", "opcode", "queue_wait", "exec", "complete", "total",
        "submit_ts_us"))
    for cid, c in ranked:
        print("%10s %-16s %12s %12s %12s %12s %14.3f" % (
            cid, c.get("opcode", "?"),
            fmt_ns(c.get("queue_wait", 0)), fmt_ns(c.get("exec", 0)),
            fmt_ns(c.get("complete", 0)), fmt_ns(c["total"]),
            c.get("ts", 0.0)))


def print_telemetry(path):
    data = load_json(path, "telemetry")
    names = data.get("names", [])
    samples = data.get("samples", [])
    series = defaultdict(list)
    for s in samples:
        for name_id, val in s.get("v", []):
            if 0 <= name_id < len(names):
                series[names[name_id]].append(val)
    print()
    print("telemetry: %d samples at %s cadence, %d gauges%s" % (
        len(samples), fmt_ns(data.get("interval_ns", 0)), len(series),
        ", %d dropped" % data["dropped"] if data.get("dropped") else ""))
    if not series:
        return series
    print("%-36s %8s %12s %12s %12s %12s" % (
        "gauge", "samples", "min", "mean", "max", "last"))
    for name in sorted(series):
        vals = series[name]
        print("%-36s %8d %12d %12.1f %12d %12d" % (
            name, len(vals), min(vals), sum(vals) / len(vals), max(vals),
            vals[-1]))
    return series


# Activity classes of the device's ResourceMeter gauges
# ("util.<resource>.<class>", permille of the sampling window against
# "util.<resource>.capacity" = capacity x 1000).
ACTIVITY_CLASSES = (
    "host_read", "host_write", "compact", "recompact", "pushdown",
    "dispatch", "other")

# Which wire opcodes an activity class serves, for the latency join. The
# dispatch class is the device's serial command pop-loop: every opcode
# rides it, so its join lists the opcodes with the worst queue_wait.
CLASS_OPCODES = {
    "host_read": ("kv_retrieve", "query_primary_range",
                  "query_secondary_range", "keyspace_stat"),
    "host_write": ("kv_store", "kv_delete", "bulk_store", "sync"),
    "pushdown": ("kv_select", "kv_aggregate"),
    "compact": ("compact", "compact_with_indexes", "compact_wait",
                "secondary_build"),
    "recompact": ("compact",),
}


def print_bottlenecks(series, cmds):
    """Joins per-class utilization against per-opcode latency and names
    the saturated resource.

    For every metered resource (soc cores, dispatch loop, NAND channels,
    PCIe directions) the table shows mean/peak utilization and which
    activity class dominates its busy time.  The ``bottleneck:`` line
    names the hottest resource and its dominant class; the join then
    lists the latency of the opcodes that class serves — if the resource
    is saturated, those are the commands paying for it.
    """
    resources = {}
    for name, vals in series.items():
        if not name.startswith("util.") or not vals:
            continue
        rest = name[len("util."):]
        if rest.endswith(".capacity"):
            res = rest[:-len(".capacity")]
            resources.setdefault(res, {})["capacity"] = vals
        else:
            res, _, cls = rest.rpartition(".")
            if res and cls in ACTIVITY_CLASSES:
                resources.setdefault(res, {}).setdefault(
                    "classes", {})[cls] = vals
    rows = []
    for res, info in sorted(resources.items()):
        classes = info.get("classes", {})
        if not classes:
            continue
        cap = (info.get("capacity") or [1000])[-1] or 1000
        n = max(len(v) for v in classes.values())
        totals = [sum(v[i] for v in classes.values() if i < len(v))
                  for i in range(n)]
        # A window's total can exceed the capacity because work is booked
        # into the window in which it completes; clamp to capacity so one
        # long compaction compute landing in a single window does not
        # dominate the ranking.
        clamped = [min(t, cap) for t in totals]
        mean_util = sum(clamped) / n / cap
        sat_share = sum(1 for c in clamped if c >= 0.9 * cap) / n
        mean_total = sum(totals) / n
        dom = max(classes,
                  key=lambda c: sum(classes[c]) / len(classes[c]))
        dom_share = (sum(classes[dom]) / len(classes[dom]) / mean_total
                     if mean_total else 0.0)
        rows.append((res, mean_util, sat_share, dom, dom_share))
    if not rows:
        return
    print()
    hdr = "%-12s %10s %11s  %-12s %10s" % (
        "resource", "mean util", "win >= 90%", "top class", "class share")
    print(hdr)
    print("-" * len(hdr))
    for res, mean_util, sat_share, dom, dom_share in rows:
        print("%-12s %9.1f%% %10.1f%%  %-12s %9.1f%%" % (
            res, 100.0 * mean_util, 100.0 * sat_share, dom,
            100.0 * dom_share))

    rows.sort(key=lambda r: r[1], reverse=True)
    res, mean_util, sat_share, dom, dom_share = rows[0]
    verdict = "saturated" if sat_share >= 0.05 or mean_util >= 0.9 \
        else "hot" if mean_util >= 0.3 else "moderate"
    print()
    print("bottleneck: %s (class %s, %.1f%% of its load), "
          "mean util %.1f%%, %.1f%% of windows >= 90%% [%s]" % (
              res, dom, 100.0 * dom_share, 100.0 * mean_util,
              100.0 * sat_share, verdict))

    # Latency join: the opcodes the dominant class serves. The dispatch
    # loop serializes everything, so its victims are whoever waited
    # longest in the SQ.
    if dom == "dispatch":
        affected = sorted(
            ((op, [c["queue_wait"] for c in group if "queue_wait" in c])
             for op, group in _by_opcode(cmds).items()),
            key=lambda kv: -percentile(sorted(kv[1]), 99))[:5]
        stage = "queue_wait"
    else:
        ops = CLASS_OPCODES.get(dom, ())
        affected = [(op, [c["exec"] for c in group if "exec" in c])
                    for op, group in _by_opcode(cmds).items() if op in ops]
        stage = "exec"
    affected = [(op, vals) for op, vals in affected if vals]
    if affected:
        print("  affected opcodes (%s p50/p99):" % stage)
        for op, vals in affected:
            vals.sort()
            print("    %-20s %10s/%-10s (%d cmds)" % (
                op, fmt_ns(percentile(vals, 50)),
                fmt_ns(percentile(vals, 99)), len(vals)))
    return res


def _by_opcode(cmds):
    by_op = defaultdict(list)
    for c in cmds.values():
        by_op[c.get("opcode", "?")].append(c)
    return by_op


def main(argv):
    trace_path = None
    telemetry_path = None
    top_n = 10
    strict = False
    required = []
    required_bottleneck = None
    for arg in argv[1:]:
        if arg.startswith("--top="):
            top_n = int(arg.split("=", 1)[1])
        elif arg == "--strict-flows":
            strict = True
        elif arg.startswith("--require-opcode="):
            required.append(arg.split("=", 1)[1])
        elif arg.startswith("--require-bottleneck="):
            required_bottleneck = arg.split("=", 1)[1]
        elif arg.startswith("--"):
            die("unknown flag %s\n%s" % (arg, USAGE))
        elif trace_path is None:
            trace_path = arg
        elif telemetry_path is None:
            telemetry_path = arg
        else:
            die(USAGE)
    if trace_path is None:
        die(USAGE)

    data = load_json(trace_path, "trace")
    events = data.get("traceEvents")
    if not isinstance(events, list):
        die("%s: no traceEvents array" % trace_path)
    tracks = track_map(events)
    cmds = collect_commands(events, tracks)
    flow_groups, bad_flows = check_flows(events, strict)

    print("trace: %s (%d events, %d commands, %d flow groups%s)" % (
        trace_path, len(events), len(cmds), flow_groups,
        ", %d BAD" % bad_flows if bad_flows else ""))
    print()
    print_breakdown(cmds)
    print_query_breakdown(events, tracks)
    print_pushdown_breakdown(events, tracks)
    print_queue_breakdown(cmds)
    print_shard_breakdown(cmds)
    print_scatter_breakdown(events, tracks)
    print_slowest(cmds, top_n)
    bottleneck = None
    if telemetry_path:
        series = print_telemetry(telemetry_path)
        bottleneck = print_bottlenecks(series, cmds)

    status = 0
    if required_bottleneck is not None and bottleneck != required_bottleneck:
        sys.stderr.write(
            "analyze_trace: required bottleneck '%s' but found '%s'\n"
            % (required_bottleneck, bottleneck))
        status = 1
    for op in required:
        complete = [
            c for c in cmds.values()
            if c.get("opcode") == op and all(s in c for s in STAGES)
        ]
        if not complete:
            sys.stderr.write(
                "analyze_trace: required opcode '%s' has no fully-staged "
                "commands\n" % op)
            status = 1
    return status


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:
        # Output piped into head/less and closed early; not an error.
        sys.exit(0)
