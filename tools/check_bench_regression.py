#!/usr/bin/env python3
"""Compare a bench --json report against a checked-in baseline.

Usage:
  tools/check_bench_regression.py BASELINE.json CURRENT.json \
      [--max-throughput-drop=0.15] [--max-p99-growth=0.25]

The simulation is deterministic, so on identical code a report matches its
baseline exactly; the thresholds only leave room for intentional perf
changes.  The gate fails when:

  * schema_version differs, or the runs used different args (comparing
    reports from different workloads is meaningless);
  * any metric named *_per_sec drops more than --max-throughput-drop
    (relative) below the baseline;
  * any histogram p99 grows more than --max-p99-growth (relative) above
    the baseline.

Counters, tables and wall_clock_unix are informational and never gated.
Metrics present on only one side are reported (a vanished metric fails:
the bench silently stopped measuring something the baseline covers).

To refresh baselines after an intentional change, run the benches (e.g.
./run_benches.sh) and point the script at the results directory:

  tools/check_bench_regression.py --update-baselines results/<stamp> \
      [--baselines-dir=bench/baselines]

Every bench --json report found in the directory (trace/telemetry/health
sidecar files are skipped automatically) is rewritten over the baseline
named after its "bench" field.  Baselines with no matching report are
left untouched and listed, so a partial bench run cannot silently erase
coverage.  A report whose schema_version differs from the existing
baseline's is refused: that means the report format changed underneath a
stale results directory (or vice versa), and overwriting would replace a
meaningful baseline with an incomparable one — delete the baseline
explicitly if the schema change is intentional.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"FAIL: cannot read {path}: {e}")
        sys.exit(2)


def relative_drop(base, cur):
    return (base - cur) / base if base > 0 else 0.0


def relative_growth(base, cur):
    return (cur - base) / base if base > 0 else 0.0


def update_baselines(results_dir, baselines_dir):
    """Regenerates the checked-in baselines from a results directory."""
    if not os.path.isdir(results_dir):
        print(f"FAIL: {results_dir} is not a directory")
        return 2
    reports = {}
    for entry in sorted(os.listdir(results_dir)):
        if not entry.endswith(".json"):
            continue
        # Observability sidecars written next to the reports by
        # run_benches.sh; they are not bench reports.
        if entry.endswith((".trace.json", ".telemetry.json",
                           ".health.json", ".flight.json")):
            continue
        path = os.path.join(results_dir, entry)
        try:
            with open(path, encoding="utf-8") as f:
                report = json.load(f)
        except (OSError, ValueError) as e:
            print(f"  skip {entry}: unreadable ({e})")
            continue
        bench = report.get("bench")
        if not bench or "schema_version" not in report:
            print(f"  skip {entry}: not a bench report")
            continue
        if bench in reports:
            print(f"FAIL: duplicate reports for bench {bench!r} in "
                  f"{results_dir}")
            return 2
        reports[bench] = (entry, report)

    if not reports:
        print(f"FAIL: no bench reports found in {results_dir}")
        return 2

    existing = {
        name[:-len(".json")]
        for name in os.listdir(baselines_dir)
        if name.endswith(".json")
    } if os.path.isdir(baselines_dir) else set()
    os.makedirs(baselines_dir, exist_ok=True)
    refused = []
    for bench, (entry, report) in sorted(reports.items()):
        dest = os.path.join(baselines_dir, f"{bench}.json")
        verb = "updated" if bench in existing else "created"
        if bench in existing:
            old_schema = load(dest).get("schema_version")
            new_schema = report.get("schema_version")
            if old_schema != new_schema:
                print(f"  REFUSED {dest}: schema_version {old_schema} != "
                      f"report {entry} schema_version {new_schema} "
                      f"(stale results? delete the baseline to force)")
                refused.append(bench)
                continue
        with open(dest, "w", encoding="utf-8") as f:
            json.dump(report, f, separators=(",", ":"))
            f.write("\n")
        print(f"  {verb} {dest} from {entry}")

    stale = sorted(existing - set(reports))
    for bench in stale:
        print(f"  WARNING: baseline {bench}.json has no report in "
              f"{results_dir}; left as-is")
    if refused:
        print(f"FAIL: {len(refused)} baseline(s) refused on "
              f"schema_version mismatch: {', '.join(refused)}")
        return 1
    print(f"PASS: {len(reports)} baseline(s) written to {baselines_dir}"
          + (f", {len(stale)} not refreshed" if stale else ""))
    return 0


def main():
    if "--update-baselines" in sys.argv[1:]:
        parser = argparse.ArgumentParser(
            description="regenerate checked-in bench baselines")
        parser.add_argument("--update-baselines", action="store_true")
        parser.add_argument("results_dir",
                            help="directory of bench --json reports "
                                 "(e.g. results/<stamp>)")
        parser.add_argument("--baselines-dir", default="bench/baselines",
                            help="destination directory "
                                 "(default bench/baselines)")
        args = parser.parse_args()
        return update_baselines(args.results_dir, args.baselines_dir)

    parser = argparse.ArgumentParser(
        description="perf-regression gate for bench --json reports")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-throughput-drop", type=float, default=0.15,
                        help="max relative drop for *_per_sec metrics "
                             "(default 0.15)")
    parser.add_argument("--max-p99-growth", type=float, default=0.25,
                        help="max relative growth for histogram p99s "
                             "(default 0.25)")
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    failures = []
    notes = []

    if base.get("schema_version") != cur.get("schema_version"):
        failures.append(
            f"schema_version mismatch: baseline "
            f"{base.get('schema_version')} vs current "
            f"{cur.get('schema_version')}")
    if base.get("bench") != cur.get("bench"):
        failures.append(f"bench mismatch: {base.get('bench')!r} vs "
                        f"{cur.get('bench')!r}")
    if base.get("args") != cur.get("args"):
        failures.append(
            f"args mismatch (different workload?): baseline "
            f"{base.get('args')} vs current {cur.get('args')}")

    # --- throughput: *_per_sec metrics ---
    base_metrics = base.get("metrics", {})
    cur_metrics = cur.get("metrics", {})
    for name, base_val in sorted(base_metrics.items()):
        if not name.endswith("_per_sec"):
            continue
        if name not in cur_metrics:
            failures.append(f"metric {name} missing from current report")
            continue
        cur_val = cur_metrics[name]
        drop = relative_drop(base_val, cur_val)
        line = (f"{name}: {base_val:.4g} -> {cur_val:.4g} "
                f"({-drop * 100:+.1f}%)")
        if drop > args.max_throughput_drop:
            failures.append(f"throughput regression: {line}")
        elif drop < -args.max_throughput_drop:
            notes.append(f"improvement (consider refreshing baseline): "
                         f"{line}")
        else:
            notes.append(f"ok: {line}")

    # --- latency: histogram p99s ---
    base_hists = base.get("histograms", {})
    cur_hists = cur.get("histograms", {})
    for name, base_h in sorted(base_hists.items()):
        if name not in cur_hists:
            failures.append(f"histogram {name} missing from current report")
            continue
        base_p99, cur_p99 = base_h.get("p99", 0), cur_hists[name].get("p99", 0)
        growth = relative_growth(base_p99, cur_p99)
        line = (f"{name}.p99: {base_p99} -> {cur_p99} "
                f"({growth * 100:+.1f}%)")
        if growth > args.max_p99_growth:
            failures.append(f"p99 regression: {line}")
        else:
            notes.append(f"ok: {line}")

    for extra in sorted(set(cur_metrics) - set(base_metrics)):
        if extra.endswith("_per_sec"):
            notes.append(f"new metric not in baseline: {extra}")

    bench = cur.get("bench", "?")
    for n in notes:
        print(f"  [{bench}] {n}")
    if failures:
        print(f"\nFAIL: {bench}: {len(failures)} regression(s) vs "
              f"{args.baseline}")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"PASS: {bench}: no regressions vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
